"""UPS battery lifetime budgeting.

Section IV-B: "a UPS battery (e.g., LFP battery) can be fully discharged
for 10 times per month without its lifetime being affected, according to
[18], we can apply it to handle occasional workload bursts without
additional battery cost."  This module tracks that budget so a deployment
can verify sprinting stays inside the free envelope — and quantify the
lifetime cost when it does not.

The wear model is the standard depth-weighted cycle count: a discharge to
depth ``d`` costs ``d ** k`` of a full cycle with ``k > 1`` — shallow
cycles wear batteries far less than proportionally (the well-known
depth-of-discharge curve).  The default exponent is calibrated to the
paper's own anchor: its Fig. 1 workload produces "200 bursts in a month
that discharge 26% of the UPS capacity each time on average, which has no
impact on UPS lifetime according to [18]" — with ``k = 2.3``,
``200 x 0.26**2.3 ~= 9`` cycles, inside the 10-per-month free budget.
Cycles consumed beyond the free monthly allowance shorten the service life
proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.power.ups import BatteryChemistry, SAFE_FULL_DISCHARGES_PER_MONTH
from repro.units import require_non_negative, require_positive

#: Rated equivalent-full-cycle budgets by chemistry (order-of-magnitude
#: values for LA vs LFP consistent with the [18] lifetimes).
RATED_CYCLES: Dict[BatteryChemistry, float] = {
    BatteryChemistry.LEAD_ACID: 500.0,
    BatteryChemistry.LFP: 2000.0,
}

#: Depth-of-discharge wear exponent: a discharge to depth d costs d**k of
#: a full cycle.  Calibrated so the paper's 200-bursts-at-26%-depth month
#: stays inside the free 10-cycle budget (see the module docstring).
DEFAULT_DEPTH_WEAR_EXPONENT = 2.3


@dataclass
class BatteryLifetimeTracker:
    """Tracks discharge cycles against the free monthly sprinting budget.

    Parameters
    ----------
    chemistry:
        The battery chemistry (sets rated cycles and service life).
    free_cycles_per_month:
        Full discharges per month that cause no lifetime impact (10 per
        [18]).
    depth_wear_exponent:
        ``k`` in the ``depth ** k`` per-discharge wear law.
    """

    chemistry: BatteryChemistry = BatteryChemistry.LFP
    free_cycles_per_month: float = float(SAFE_FULL_DISCHARGES_PER_MONTH)
    depth_wear_exponent: float = DEFAULT_DEPTH_WEAR_EXPONENT

    cycles_this_month: float = field(default=0.0, init=False)
    lifetime_cycles: float = field(default=0.0, init=False)
    months_elapsed: int = field(default=0, init=False)
    excess_cycles: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        require_positive(self.free_cycles_per_month, "free_cycles_per_month")
        if self.depth_wear_exponent < 1.0:
            raise ConfigurationError(
                "depth_wear_exponent must be >= 1 (shallow cycles cannot "
                f"wear more than deep ones), got {self.depth_wear_exponent!r}"
            )

    @property
    def rated_cycles(self) -> float:
        """Total equivalent full cycles the chemistry is rated for."""
        return RATED_CYCLES[self.chemistry]

    def record_discharge(self, energy_j: float, capacity_j: float) -> None:
        """Account one discharge event of ``energy_j`` from a pack.

        The wear charged is ``(energy/capacity) ** k`` full-cycle
        equivalents — one event per burst, not per control period, so the
        depth reflects the whole discharge.
        """
        require_non_negative(energy_j, "energy_j")
        require_positive(capacity_j, "capacity_j")
        depth = min(1.0, energy_j / capacity_j)
        cycles = depth ** self.depth_wear_exponent
        excess_before = self.excess_cycles_this_month()
        self.cycles_this_month += cycles
        self.lifetime_cycles += cycles
        self.excess_cycles += self.excess_cycles_this_month() - excess_before

    def excess_cycles_this_month(self) -> float:
        """Cycles beyond the free allowance in the current month."""
        return max(0.0, self.cycles_this_month - self.free_cycles_per_month)

    @property
    def within_free_budget(self) -> bool:
        """Whether this month's sprinting has cost any battery life."""
        return self.cycles_this_month <= self.free_cycles_per_month

    def remaining_free_cycles(self) -> float:
        """Free discharges left this month."""
        return max(0.0, self.free_cycles_per_month - self.cycles_this_month)

    def close_month(self) -> float:
        """Roll the month over; returns the month's excess cycles."""
        excess = self.excess_cycles_this_month()
        self.months_elapsed += 1
        self.cycles_this_month = 0.0
        return excess

    def projected_service_life_years(self, cycles_per_month: float) -> float:
        """Service life if every month consumed ``cycles_per_month``.

        Within the free budget the chemistry's calendar life applies
        (Section III-B: 4 years LA, 8 years LFP); beyond it the cycle
        budget binds.
        """
        require_non_negative(cycles_per_month, "cycles_per_month")
        calendar_years = float(self.chemistry.service_life_years)
        if cycles_per_month <= self.free_cycles_per_month:
            return calendar_years
        cycle_years = self.rated_cycles / (cycles_per_month * 12.0)
        return min(calendar_years, cycle_years)

    def reset(self) -> None:
        """Clear all accounting."""
        self.cycles_this_month = 0.0
        self.lifetime_cycles = 0.0
        self.months_elapsed = 0
        self.excess_cycles = 0.0
