"""Uninterruptible power supply (UPS) battery models.

The paper assumes server-level *distributed* UPS batteries (the deployment
style of Kontorinis et al. [18]): each server carries a small battery sized
for a handful of minutes of runtime, and batteries can be coordinated so a
chosen subset of servers draws from battery instead of from the PDU, thereby
shaping the power that flows through (and the overload seen by) the PDU-level
breakers.

Defaults follow Section VI-A: a 0.5 Ah battery sustaining the 55 W
peak-normal server power for about 6 minutes, with lifetime accounting per
[18] (an LFP battery tolerates ~10 full discharges per month within its
8-year service life; lead-acid is rated for 4 years).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import BatteryDepletedError, ConfigurationError
from repro.units import (
    SECONDS_PER_MINUTE,
    amp_hours_to_joules,
    require_fraction,
    require_non_negative,
    require_positive,
)

#: Nominal battery voltage; 0.5 Ah x 11 V x 3600 = 19.8 kJ = 55 W x 6 min,
#: which reproduces the paper's "0.5 Ah sustains peak normal power for about
#: 6 minutes" sizing exactly.
DEFAULT_VOLTAGE_V = 11.0

#: Default capacity of the per-server battery (Section VI-A).
DEFAULT_CAPACITY_AH = 0.5

#: Full discharges per month that do not shorten battery life (per [18]).
SAFE_FULL_DISCHARGES_PER_MONTH = 10


class BatteryChemistry(Enum):
    """Battery chemistries discussed by the paper, with service life in years."""

    LEAD_ACID = 4
    LFP = 8

    @property
    def service_life_years(self) -> int:
        """Required service life of this chemistry per the paper (Sec III-B)."""
        return self.value


@dataclass(slots=True)
class UpsBattery:
    """A single UPS battery with state-of-charge and cycle accounting.

    Energy accounting is done in joules.  Discharge and recharge rates are
    bounded by C-rate-style power limits; drawing more energy than stored
    raises :class:`BatteryDepletedError` so controller bugs cannot silently
    create energy.

    Parameters
    ----------
    capacity_ah:
        Rated charge capacity in ampere-hours.
    voltage_v:
        Nominal terminal voltage.
    max_discharge_power_w:
        Upper bound on instantaneous discharge power.  Defaults to the power
        that would empty a full battery in one minute, generous enough that
        the sprinting experiments are energy- rather than rate-limited.
    efficiency:
        Round-trip efficiency applied on recharge (discharge is counted at
        the terminals).
    chemistry:
        Used only for lifetime bookkeeping.
    """

    capacity_ah: float = DEFAULT_CAPACITY_AH
    voltage_v: float = DEFAULT_VOLTAGE_V
    max_discharge_power_w: float = 0.0
    efficiency: float = 0.9
    chemistry: BatteryChemistry = BatteryChemistry.LFP

    #: Stored energy in joules (starts full).
    energy_j: float = field(init=False)
    #: Cumulative energy discharged over the battery's life, in joules.
    total_discharged_j: float = field(default=0.0, init=False)
    #: Number of equivalent full discharge cycles accumulated.
    equivalent_full_cycles: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        require_positive(self.capacity_ah, "capacity_ah")
        require_positive(self.voltage_v, "voltage_v")
        require_fraction(self.efficiency, "efficiency")
        if self.efficiency == 0.0:
            raise ConfigurationError("efficiency must be > 0")
        self.energy_j = self.capacity_j
        if self.max_discharge_power_w <= 0.0:
            self.max_discharge_power_w = self.capacity_j / SECONDS_PER_MINUTE
        require_positive(self.max_discharge_power_w, "max_discharge_power_w")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def capacity_j(self) -> float:
        """Full-charge energy content in joules."""
        return amp_hours_to_joules(self.capacity_ah, self.voltage_v)

    @property
    def state_of_charge(self) -> float:
        """Fraction of capacity currently stored, in [0, 1]."""
        return self.energy_j / self.capacity_j

    @property
    def is_empty(self) -> bool:
        """True once effectively no usable energy remains."""
        return self.energy_j <= 1e-9

    def runtime_at_power_s(self, power_w: float) -> float:
        """Seconds the battery can sustain a constant ``power_w`` draw."""
        require_non_negative(power_w, "power_w")
        if power_w == 0.0:
            return math.inf
        usable_power = min(power_w, self.max_discharge_power_w)
        if usable_power < power_w:
            # The battery cannot deliver the requested rate at all.
            return 0.0
        return self.energy_j / power_w

    def available_power_w(self) -> float:
        """Maximum discharge power deliverable right now."""
        if self.is_empty:
            return 0.0
        return self.max_discharge_power_w

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def discharge(self, power_w: float, dt_s: float) -> float:
        """Draw ``power_w`` for ``dt_s`` seconds; return energy delivered (J).

        Raises
        ------
        BatteryDepletedError
            If the battery holds less energy than requested or the requested
            power exceeds the discharge rate limit.  Use
            :meth:`discharge_up_to` for best-effort draws.
        """
        require_non_negative(power_w, "power_w")
        require_positive(dt_s, "dt_s")
        if power_w == 0.0:
            return 0.0
        if power_w > self.max_discharge_power_w * (1.0 + 1e-9):
            raise BatteryDepletedError(
                f"requested {power_w:.1f} W exceeds the battery's "
                f"{self.max_discharge_power_w:.1f} W discharge limit"
            )
        needed_j = power_w * dt_s
        if needed_j > self.energy_j + 1e-9:
            raise BatteryDepletedError(
                f"requested {needed_j:.1f} J but only "
                f"{self.energy_j:.1f} J stored"
            )
        self._withdraw(needed_j)
        return needed_j

    def discharge_up_to(
        self, power_w: float, dt_s: float, floor_j: float = 0.0
    ) -> float:
        """Best-effort discharge; returns the power (W) actually delivered.

        ``floor_j`` is energy the discharge may never dip below — the
        outage-bridge reserve a deployment can keep out of sprinting's
        reach (Section III-B's primary duty of the batteries).
        """
        require_non_negative(power_w, "power_w")
        require_positive(dt_s, "dt_s")
        require_non_negative(floor_j, "floor_j")
        usable_j = max(0.0, self.energy_j - floor_j)
        deliverable_w = min(power_w, self.max_discharge_power_w)
        deliverable_w = min(deliverable_w, usable_j / dt_s)
        deliverable_w = max(0.0, deliverable_w)
        if deliverable_w > 0.0:
            self._withdraw(deliverable_w * dt_s)
        return deliverable_w

    def recharge(self, power_w: float, dt_s: float) -> float:
        """Recharge at ``power_w`` for ``dt_s``; return energy stored (J).

        Recharge happens between bursts when demand is low (Section III-B);
        round-trip losses are charged here.  Charging saturates at capacity.
        """
        require_non_negative(power_w, "power_w")
        require_positive(dt_s, "dt_s")
        stored = power_w * dt_s * self.efficiency
        stored = min(stored, self.capacity_j - self.energy_j)
        self.energy_j += stored
        return stored

    def _withdraw(self, energy_j: float) -> None:
        self.energy_j -= energy_j
        self.energy_j = max(0.0, self.energy_j)
        self.total_discharged_j += energy_j
        self.equivalent_full_cycles += energy_j / self.capacity_j

    def fail_fraction(self, fraction: float) -> None:
        """Permanently lose ``fraction`` of capacity, charge and rate.

        Fault injection: a share of the (aggregated) battery fails open.
        Capacity, stored energy and the discharge-rate limit all scale by
        the surviving share; a tiny floor keeps the capacity positive so
        state-of-charge arithmetic stays well defined even at 100 % loss.
        """
        require_fraction(fraction, "fraction")
        surviving = max(1.0 - fraction, 1e-9)
        self.capacity_ah *= surviving
        self.max_discharge_power_w *= surviving
        self.energy_j = min(self.energy_j * surviving, self.capacity_j)

    def reset(self) -> None:
        """Restore a full charge and clear cycle counters."""
        self.energy_j = self.capacity_j
        self.total_discharged_j = 0.0
        self.equivalent_full_cycles = 0.0


@dataclass(slots=True)
class DistributedUpsFleet:
    """Aggregate view over the per-server UPS batteries of a whole PDU group.

    The sprinting controller reasons about a PDU group (200 servers by
    default) as one logical battery: "set a desired number of servers to be
    powered by their batteries" [18].  Because all batteries are identical
    and discharged in rotation, the fleet is modelled as a single energy pool
    with an aggregate rate limit; this is exact for the quantities the paper
    evaluates (energy split, sustained time) while avoiding 180,000
    per-object updates each step.

    Parameters
    ----------
    n_batteries:
        Number of per-server batteries aggregated.
    battery:
        Prototype battery; its capacity and limits are scaled by
        ``n_batteries``.
    """

    n_batteries: int
    battery: UpsBattery = field(default_factory=UpsBattery)

    def __post_init__(self) -> None:
        if self.n_batteries <= 0:
            raise ConfigurationError(
                f"n_batteries must be > 0, got {self.n_batteries!r}"
            )

    @property
    def capacity_j(self) -> float:
        """Total energy capacity of the fleet (J)."""
        return self.battery.capacity_j * self.n_batteries

    @property
    def energy_j(self) -> float:
        """Total stored energy of the fleet (J)."""
        return self.battery.energy_j * self.n_batteries

    @property
    def state_of_charge(self) -> float:
        """Fleet-average state of charge."""
        return self.battery.state_of_charge

    @property
    def is_empty(self) -> bool:
        """True when the pooled energy is exhausted."""
        return self.battery.is_empty

    def available_power_w(self) -> float:
        """Maximum aggregate discharge power right now."""
        return self.battery.available_power_w() * self.n_batteries

    def discharge_up_to(
        self, power_w: float, dt_s: float, floor_j: float = 0.0
    ) -> float:
        """Best-effort aggregate discharge; returns total power delivered.

        ``floor_j`` is the fleet-wide energy floor (outage reserve).
        """
        per_battery = require_non_negative(power_w, "power_w") / self.n_batteries
        per_floor = require_non_negative(floor_j, "floor_j") / self.n_batteries
        delivered = self.battery.discharge_up_to(per_battery, dt_s, per_floor)
        return delivered * self.n_batteries

    def recharge(self, power_w: float, dt_s: float) -> float:
        """Aggregate recharge; returns total energy stored (J)."""
        per_battery = require_non_negative(power_w, "power_w") / self.n_batteries
        stored = self.battery.recharge(per_battery, dt_s)
        return stored * self.n_batteries

    def fail_fraction(self, fraction: float) -> None:
        """Lose ``fraction`` of the fleet (fault injection).

        Because the fleet is modelled as one pooled battery, failing a
        share of the batteries is exactly a proportional loss of pooled
        capacity, charge and rate — delegated to the prototype.
        """
        self.battery.fail_fraction(fraction)

    def reset(self) -> None:
        """Restore full charge across the fleet."""
        self.battery.reset()
