"""Utility feed events and the diesel backup generator.

Two background systems the paper leans on:

* Section IV-A lists "unexpected power spikes in the utility power supply"
  among the events that force an immediate de-sprint — modelled here as a
  scheduled event stream a scenario can inject and the safety monitor can
  react to;
* Section III-B describes the classic outage bridge: "UPS devices are
  widely equipped in data centers to temporarily supply power when the main
  power source suddenly fails and before the diesel generator starts to
  work.  While the startup of diesel generator usually takes tens of
  seconds, the UPS can usually keep working for several minutes."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.units import require_non_negative, require_positive


class UtilityEventKind(Enum):
    """Kinds of utility-side disturbances."""

    OUTAGE = "outage"
    SAG = "sag"
    SPIKE = "spike"


@dataclass(frozen=True)
class UtilityEvent:
    """One scheduled disturbance of the utility feed.

    ``magnitude`` is interpreted per kind: the supplied-power fraction
    during a SAG (e.g. 0.7 = 70 % of nominal available), the over-voltage
    load multiplier during a SPIKE (loads draw ``magnitude`` times their
    power), and ignored for an OUTAGE (supply goes to zero).
    """

    kind: UtilityEventKind
    start_s: float
    duration_s: float
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.start_s, "start_s")
        require_positive(self.duration_s, "duration_s")
        require_positive(self.magnitude, "magnitude")

    @property
    def end_s(self) -> float:
        """First instant after the event."""
        return self.start_s + self.duration_s

    def active_at(self, time_s: float) -> bool:
        """Whether the event covers ``time_s``."""
        return self.start_s <= time_s < self.end_s


@dataclass
class UtilityFeed:
    """The utility supply: nominal capacity modulated by scheduled events."""

    nominal_capacity_w: float
    events: List[UtilityEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        require_positive(self.nominal_capacity_w, "nominal_capacity_w")

    def add_event(self, event: UtilityEvent) -> None:
        """Schedule a disturbance."""
        self.events.append(event)

    def event_at(self, time_s: float) -> Optional[UtilityEvent]:
        """The disturbance covering ``time_s``, if any (first wins)."""
        require_non_negative(time_s, "time_s")
        for event in self.events:
            if event.active_at(time_s):
                return event
        return None

    def available_power_w(self, time_s: float) -> float:
        """Power the grid can deliver at ``time_s``."""
        event = self.event_at(time_s)
        if event is None:
            return self.nominal_capacity_w
        if event.kind is UtilityEventKind.OUTAGE:
            return 0.0
        if event.kind is UtilityEventKind.SAG:
            return self.nominal_capacity_w * min(1.0, event.magnitude)
        return self.nominal_capacity_w

    def load_multiplier(self, time_s: float) -> float:
        """Apparent-load multiplier (spikes make loads draw more current)."""
        event = self.event_at(time_s)
        if event is not None and event.kind is UtilityEventKind.SPIKE:
            return max(1.0, event.magnitude)
        return 1.0

    def is_healthy(self, time_s: float) -> bool:
        """True when no disturbance is active."""
        return self.event_at(time_s) is None


class GeneratorState(Enum):
    """Operating state of the diesel generator."""

    OFF = "off"
    STARTING = "starting"
    RUNNING = "running"


@dataclass
class DieselGenerator:
    """Backup diesel generator with a realistic start-up delay.

    Parameters
    ----------
    rated_power_w:
        Power delivered once running (sized for the facility's critical
        load).
    startup_time_s:
        Crank-to-ready delay ("tens of seconds", Section III-B).
    fuel_capacity_j:
        On-site fuel, as deliverable electric energy.
    """

    rated_power_w: float
    startup_time_s: float = 30.0
    fuel_capacity_j: float = float("inf")

    state: GeneratorState = field(default=GeneratorState.OFF, init=False)
    _starting_for_s: float = field(default=0.0, init=False)
    fuel_j: float = field(init=False)

    def __post_init__(self) -> None:
        require_positive(self.rated_power_w, "rated_power_w")
        require_positive(self.startup_time_s, "startup_time_s")
        if self.fuel_capacity_j <= 0:
            raise ConfigurationError("fuel_capacity_j must be > 0")
        self.fuel_j = self.fuel_capacity_j

    def start(self) -> None:
        """Begin the start sequence (idempotent)."""
        if self.state is GeneratorState.OFF:
            self.state = GeneratorState.STARTING
            self._starting_for_s = 0.0

    def stop(self) -> None:
        """Shut the generator down."""
        self.state = GeneratorState.OFF
        self._starting_for_s = 0.0

    def step(self, dt_s: float) -> None:
        """Advance the start sequence / fuel burn bookkeeping."""
        require_positive(dt_s, "dt_s")
        if self.state is GeneratorState.STARTING:
            self._starting_for_s += dt_s
            if self._starting_for_s >= self.startup_time_s:
                self.state = GeneratorState.RUNNING

    def available_power_w(self) -> float:
        """Power deliverable right now (0 unless running with fuel)."""
        if self.state is not GeneratorState.RUNNING or self.fuel_j <= 0.0:
            return 0.0
        return self.rated_power_w

    def draw(self, power_w: float, dt_s: float) -> float:
        """Draw power for one step; returns what was actually delivered."""
        require_non_negative(power_w, "power_w")
        require_positive(dt_s, "dt_s")
        deliverable = min(power_w, self.available_power_w())
        if deliverable > 0.0 and self.fuel_j != float("inf"):
            burn = deliverable * dt_s
            if burn > self.fuel_j:
                deliverable = self.fuel_j / dt_s
                burn = self.fuel_j
            self.fuel_j -= burn
        return deliverable

    def reset(self) -> None:
        """Back to off with full fuel."""
        self.state = GeneratorState.OFF
        self._starting_for_s = 0.0
        self.fuel_j = self.fuel_capacity_j


@dataclass(frozen=True)
class OutageStep:
    """Telemetry of one second of an outage-bridging scenario."""

    time_s: float
    utility_w: float
    generator_w: float
    ups_w: float
    unserved_w: float

    @property
    def served(self) -> bool:
        """Whether the critical load was fully powered this second."""
        return self.unserved_w <= 1e-6


def bridge_outage(
    critical_load_w: float,
    outage_duration_s: float,
    ups_energy_j: float,
    generator: DieselGenerator,
    dt_s: float = 1.0,
) -> List[OutageStep]:
    """Simulate the classic outage bridge: UPS carries until diesel is up.

    Returns the per-second record; the scenario succeeds when every step is
    served (the paper's premise for why UPS capacity exists at all — and
    why its *spare* capacity is available for sprinting).
    """
    require_positive(critical_load_w, "critical_load_w")
    require_positive(outage_duration_s, "outage_duration_s")
    require_non_negative(ups_energy_j, "ups_energy_j")
    generator.reset()
    generator.start()

    steps: List[OutageStep] = []
    ups_left = ups_energy_j
    t = 0.0
    while t < outage_duration_s:
        generator.step(dt_s)
        from_generator = generator.draw(critical_load_w, dt_s)
        shortfall = critical_load_w - from_generator
        from_ups = min(shortfall, ups_left / dt_s)
        ups_left -= from_ups * dt_s
        steps.append(
            OutageStep(
                time_s=t,
                utility_w=0.0,
                generator_w=from_generator,
                ups_w=from_ups,
                unserved_w=shortfall - from_ups,
            )
        )
        t += dt_s
    return steps
