"""``python -m repro`` — the command-line entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: exit quietly.
        sys.exit(0)
