"""Server power model: chip plus constant non-CPU components.

Section VI-A: the non-CPU power (memory, disk, fans, losses) is a constant
20 W — deliberately conservative; a larger non-CPU share would admit fewer
servers into the same power envelope and leave relatively more sprinting
energy per server, lengthening sprint duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.servers.chip import ChipModel
from repro.units import require_non_negative

#: Constant power of non-CPU server components (Section VI-A).
DEFAULT_NON_CPU_POWER_W = 20.0


@dataclass(frozen=True)
class ServerModel:
    """Power model of one server: a many-core chip + fixed platform power.

    At the paper's defaults the peak-normal server power is
    20 W + 5 W + 12 x 2.5 W = 55 W, and the full-sprint power is
    20 W + 125 W = 145 W.
    """

    chip: ChipModel = field(default_factory=ChipModel)
    non_cpu_power_w: float = DEFAULT_NON_CPU_POWER_W

    def __post_init__(self) -> None:
        require_non_negative(self.non_cpu_power_w, "non_cpu_power_w")

    def power_w(self, active_cores: int, utilization: float = 1.0) -> float:
        """Server power with a discrete active-core count."""
        return self.non_cpu_power_w + self.chip.power_w(active_cores, utilization)

    def power_at_degree_w(self, degree: float) -> float:
        """Server power at a continuous sprinting degree."""
        return self.non_cpu_power_w + self.chip.power_at_degree_w(degree)

    @property
    def peak_normal_power_w(self) -> float:
        """Server power in normal operation (55 W at defaults)."""
        return self.power_w(self.chip.normal_cores)

    @property
    def full_sprint_power_w(self) -> float:
        """Server power with every core active (145 W at defaults)."""
        return self.power_w(self.chip.total_cores)

    @property
    def max_additional_power_w(self) -> float:
        """Extra power of a full sprint over normal (90 W at defaults)."""
        return self.full_sprint_power_w - self.peak_normal_power_w

    def additional_power_at_degree_w(self, degree: float) -> float:
        """Extra power over peak-normal at a given sprinting degree."""
        extra = self.power_at_degree_w(degree) - self.peak_normal_power_w
        return max(0.0, extra)
