"""Server substrate: many-core chip, server, fleet and throughput models."""

from repro.servers.chip import (
    ChipModel,
    DEFAULT_CORE_POWER_W,
    DEFAULT_IDLE_CHIP_POWER_W,
    DEFAULT_NORMAL_CORES,
    DEFAULT_TOTAL_CORES,
)
from repro.servers.cluster import DEFAULT_N_SERVERS, ServerCluster
from repro.servers.pcm import DEFAULT_FULL_SPRINT_ENDURANCE_MIN, PcmHeatSink
from repro.servers.performance import DEFAULT_MAX_CAPACITY, ThroughputModel
from repro.servers.server import DEFAULT_NON_CPU_POWER_W, ServerModel

__all__ = [
    "ChipModel",
    "DEFAULT_CORE_POWER_W",
    "DEFAULT_FULL_SPRINT_ENDURANCE_MIN",
    "PcmHeatSink",
    "DEFAULT_IDLE_CHIP_POWER_W",
    "DEFAULT_N_SERVERS",
    "DEFAULT_MAX_CAPACITY",
    "DEFAULT_NON_CPU_POWER_W",
    "DEFAULT_NORMAL_CORES",
    "DEFAULT_TOTAL_CORES",
    "ServerCluster",
    "ServerModel",
    "ThroughputModel",
]
