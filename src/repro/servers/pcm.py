"""Chip-level sprinting thermals: the phase-change-material heat sink.

Data Center Sprinting's prerequisite is that chip-level sprinting is
already safe: "we assume that computational sprinting has already been
applied to the processor chips" (Section II), using the PCM package of
Raghavan et al. [32], [31] — a block of phase-change material on the chip
that absorbs the sprint's excess heat in its melting plateau, then
re-solidifies while the chip runs normally.  Section IV adds the coupling
rule this module enables: "If the chip-level sprinting can be no longer
sustained, we also finish Data Center Sprinting."

Model: the chip's sustainable heat-removal path carries the normal-
operation power; any excess melts the PCM, whose latent-heat budget sets
the chip-level sprint duration; at or below normal power the PCM
re-freezes at the spare capacity of the removal path.

Sizing: [32] reports ~seconds-to-a-minute sprints for mobile parts; a
server-class package has room for far more material, and the paper's
data-center experiments run multi-minute sprints, so the default budget is
calibrated to sustain a full-degree sprint for 30 minutes — long enough
that the *data-center* constraints (breakers, UPS, TES) bind first, which
is exactly the paper's operating assumption.  Shrink
``latent_budget_j`` to study the regime where the chip becomes the
binding constraint (see ``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.servers.chip import ChipModel
from repro.units import minutes, require_non_negative, require_positive

#: Default chip-level sprint endurance at the full sprinting degree.
DEFAULT_FULL_SPRINT_ENDURANCE_MIN = 30.0


@dataclass
class PcmHeatSink:
    """The phase-change buffer of one (representative) chip.

    Because every server sprints in unison in the homogeneous facility,
    one representative PCM state tracks the whole fleet (the same
    O(1)-per-step argument as the representative PDU).

    Parameters
    ----------
    chip:
        The chip whose excess heat the PCM absorbs.
    latent_budget_j:
        Heat the PCM absorbs across its melting plateau (J per chip).
    refreeze_power_w:
        Spare removal capacity that re-solidifies the PCM while the chip
        is at or below normal power.
    """

    chip: ChipModel = field(default_factory=ChipModel)
    #: Latent budget in joules; 0.0 (the default) auto-sizes for the
    #: default endurance, negative values are rejected.
    latent_budget_j: float = 0.0
    #: Re-freeze rate in watts; 0.0 auto-sizes to a quarter of the
    #: full-sprint excess (a sprint is paid back over ~4x its duration).
    refreeze_power_w: float = 0.0

    #: Latent heat currently absorbed (0 = fully solid).
    melted_j: float = field(default=0.0, init=False)
    #: Exhaustion latch: set when the PCM fully melts, cleared only once
    #: it has fully re-solidified — chip sprinting does not flicker back
    #: on a sliver of re-frozen material.
    _latched: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.latent_budget_j == 0.0:
            # Size for the default endurance at full sprint.
            excess = self.chip.full_power_w - self.chip.normal_power_w
            self.latent_budget_j = excess * minutes(
                DEFAULT_FULL_SPRINT_ENDURANCE_MIN
            )
        require_positive(self.latent_budget_j, "latent_budget_j")
        if self.refreeze_power_w == 0.0:
            self.refreeze_power_w = (
                self.chip.full_power_w - self.chip.normal_power_w
            ) / 4.0
        require_positive(self.refreeze_power_w, "refreeze_power_w")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def melted_fraction(self) -> float:
        """Share of the latent budget consumed, in [0, 1]."""
        return self.melted_j / self.latent_budget_j

    @property
    def exhausted(self) -> bool:
        """True while chip sprinting must stay off.

        Set when the PCM fully melts; held until it has fully
        re-solidified (the Section IV rule ends the episode, it does not
        duty-cycle it).
        """
        if self.melted_j >= self.latent_budget_j * (1.0 - 1e-12):
            return True
        return self._latched

    def excess_power_w(self, degree: float) -> float:
        """Chip heat above the sustainable path at a sprinting degree."""
        power = self.chip.power_at_degree_w(degree)
        return max(0.0, power - self.chip.normal_power_w)

    def endurance_s(self, degree: float) -> float:
        """Chip-level sprint time remaining at a constant degree."""
        excess = self.excess_power_w(degree)
        if excess <= 0.0:
            return float("inf")
        return (self.latent_budget_j - self.melted_j) / excess

    def max_sustainable_degree(self, minimum_endurance_s: float) -> float:
        """Largest degree whose remaining endurance meets a floor.

        The controller's chip-level analogue of the breaker bound: keep at
        least ``minimum_endurance_s`` of PCM budget at the chosen degree.
        """
        require_positive(minimum_endurance_s, "minimum_endurance_s")
        remaining = self.latent_budget_j - self.melted_j
        if remaining <= 0.0:
            return 1.0
        allowed_excess = remaining / minimum_endurance_s
        # Invert the affine chip power curve.
        per_degree = self.chip.core_power_w * self.chip.normal_cores
        degree = 1.0 + allowed_excess / per_degree
        return min(degree, self.chip.max_sprinting_degree)

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self, degree: float, dt_s: float) -> None:
        """Advance the PCM state one step at the given sprinting degree."""
        require_non_negative(degree, "degree")
        require_positive(dt_s, "dt_s")
        excess = self.excess_power_w(degree)
        if excess > 0.0:
            self.melted_j = min(
                self.latent_budget_j, self.melted_j + excess * dt_s
            )
            if self.melted_j >= self.latent_budget_j * (1.0 - 1e-12):
                self._latched = True
        else:
            self.melted_j = max(
                0.0, self.melted_j - self.refreeze_power_w * dt_s
            )
            if self.melted_j == 0.0:
                self._latched = False

    def reset(self) -> None:
        """Fully re-solidify the PCM."""
        self.melted_j = 0.0
        self._latched = False
