"""Many-core chip power model (Intel Single-chip Cloud Computer-like).

Section VI-A configures every server with a 48-core chip modelled on
Intel's Single-chip Cloud Computer [14]:

* 125 W when fully utilised (all 48 cores active),
* 2.5 W per fully-utilised core,
* 5 W chip floor when every core is inactive,
* 12 cores active in normal (non-sprinting) operation.

The *sprinting degree* is the ratio of active cores to the normal count:
12 cores is degree 1.0, all 48 cores is the maximum degree of 4.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import require_non_negative, require_positive

#: Total cores on the chip (Section VI-A).
DEFAULT_TOTAL_CORES = 48

#: Cores active during normal operation, set by dark-silicon constraints.
DEFAULT_NORMAL_CORES = 12

#: Power of one fully-utilised core (W).
DEFAULT_CORE_POWER_W = 2.5

#: Chip power floor with all cores inactive (W).
DEFAULT_IDLE_CHIP_POWER_W = 5.0


@dataclass(frozen=True)
class ChipModel:
    """Power model of one many-core processor chip.

    Parameters
    ----------
    total_cores:
        Cores physically present (48).
    normal_cores:
        Cores that may be active sustainably (12) — the rest are dark
        silicon that only sprinting lights up.
    core_power_w:
        Incremental power of one active, fully-utilised core.
    idle_chip_power_w:
        Chip power with zero active cores (uncore, leakage).
    """

    total_cores: int = DEFAULT_TOTAL_CORES
    normal_cores: int = DEFAULT_NORMAL_CORES
    core_power_w: float = DEFAULT_CORE_POWER_W
    idle_chip_power_w: float = DEFAULT_IDLE_CHIP_POWER_W

    def __post_init__(self) -> None:
        if self.total_cores <= 0:
            raise ConfigurationError(
                f"total_cores must be > 0, got {self.total_cores!r}"
            )
        if not 0 < self.normal_cores <= self.total_cores:
            raise ConfigurationError(
                "normal_cores must be in (0, total_cores], got "
                f"{self.normal_cores!r} of {self.total_cores!r}"
            )
        require_positive(self.core_power_w, "core_power_w")
        require_non_negative(self.idle_chip_power_w, "idle_chip_power_w")

    # ------------------------------------------------------------------
    # Sprinting-degree arithmetic
    # ------------------------------------------------------------------
    @property
    def max_sprinting_degree(self) -> float:
        """Degree with every core on: total / normal (4.0 at defaults)."""
        return self.total_cores / self.normal_cores

    def cores_for_degree(self, degree: float) -> int:
        """Active-core count realising a sprinting degree (rounded up).

        The paper treats the degree as continuous but notes it is "discrete
        with a fine granularity (each core can be individually powered on or
        off)"; rounding up guarantees the realised capacity is at least the
        requested one.
        """
        require_positive(degree, "degree")
        cores = math.ceil(degree * self.normal_cores - 1e-9)
        return min(max(1, cores), self.total_cores)

    def degree_for_cores(self, active_cores: int) -> float:
        """Sprinting degree realised by ``active_cores``."""
        if not 0 <= active_cores <= self.total_cores:
            raise ConfigurationError(
                f"active_cores must be in [0, {self.total_cores}], "
                f"got {active_cores!r}"
            )
        return active_cores / self.normal_cores

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def power_w(self, active_cores: int, utilization: float = 1.0) -> float:
        """Chip power with ``active_cores`` on at the given utilisation.

        Sprinting targets compute-intensive workloads (Section IV), so the
        evaluation uses ``utilization = 1.0``; the parameter exists for the
        fractional last core of a continuous degree.
        """
        if not 0 <= active_cores <= self.total_cores:
            raise ConfigurationError(
                f"active_cores must be in [0, {self.total_cores}], "
                f"got {active_cores!r}"
            )
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization!r}"
            )
        return self.idle_chip_power_w + (
            self.core_power_w * active_cores * utilization
        )

    def power_at_degree_w(self, degree: float) -> float:
        """Chip power at a *continuous* sprinting degree.

        Fractional degrees are interpolated linearly, matching the paper's
        treatment of the degree as a continuous control variable.
        """
        require_non_negative(degree, "degree")
        if degree > self.max_sprinting_degree + 1e-9:
            raise ConfigurationError(
                f"degree {degree!r} exceeds the chip maximum "
                f"{self.max_sprinting_degree!r}"
            )
        active = min(degree * self.normal_cores, float(self.total_cores))
        return self.idle_chip_power_w + self.core_power_w * active

    @property
    def normal_power_w(self) -> float:
        """Chip power in normal operation (35 W at defaults)."""
        return self.power_w(self.normal_cores)

    @property
    def full_power_w(self) -> float:
        """Chip power with all cores fully utilised (125 W at defaults)."""
        return self.power_w(self.total_cores)
