"""Server fleet: the facility's aggregate compute and power envelope.

Section VI-A models a data center whose servers peak at 10 MW without
sprinting; at 55 W per server that is ~180,000 servers (the paper's number),
organised in groups of 200 under each PDU.  Because the fleet is homogeneous
and the workload is spread evenly, the cluster exposes fleet-wide power and
capacity as simple scalings of the per-server model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.servers.performance import ThroughputModel
from repro.servers.server import ServerModel
from repro.units import require_non_negative

#: Fleet size used throughout the evaluation (Section VI-A).
DEFAULT_N_SERVERS = 180_000


@dataclass(frozen=True)
class ServerCluster:
    """A homogeneous fleet of sprinting-capable servers.

    Parameters
    ----------
    n_servers:
        Fleet size.
    server:
        Per-server power model.
    throughput:
        Degree-to-capacity mapping shared by every server.
    """

    n_servers: int = DEFAULT_N_SERVERS
    server: ServerModel = field(default_factory=ServerModel)
    throughput: ThroughputModel = field(default_factory=ThroughputModel)

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise ConfigurationError(
                f"n_servers must be > 0, got {self.n_servers!r}"
            )
        chip_max = self.server.chip.max_sprinting_degree
        if abs(self.throughput.max_degree - chip_max) > 1e-6:
            raise ConfigurationError(
                "throughput.max_degree must match the chip's maximum "
                f"sprinting degree ({self.throughput.max_degree!r} != "
                f"{chip_max!r})"
            )

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    @property
    def peak_normal_power_w(self) -> float:
        """Fleet peak power without sprinting (9.9 MW at defaults)."""
        return self.n_servers * self.server.peak_normal_power_w

    @property
    def full_sprint_power_w(self) -> float:
        """Fleet power at the maximum sprinting degree (26.1 MW)."""
        return self.n_servers * self.server.full_sprint_power_w

    @property
    def max_additional_power_w(self) -> float:
        """Fleet-wide extra power of a full sprint (16.2 MW at defaults)."""
        return self.full_sprint_power_w - self.peak_normal_power_w

    def power_at_degree_w(self, degree: float) -> float:
        """Fleet power with every server at sprinting degree ``degree``."""
        return self.n_servers * self.server.power_at_degree_w(degree)

    def additional_power_at_degree_w(self, degree: float) -> float:
        """Fleet-wide extra power over peak-normal at ``degree``."""
        return self.n_servers * self.server.additional_power_at_degree_w(degree)

    def degree_for_power(self, fleet_power_w: float) -> float:
        """Largest sprinting degree powerable within ``fleet_power_w``.

        Inverse of :meth:`power_at_degree_w` (power is affine in the
        degree), clamped into [0, max degree].  This is how the controller
        converts a breaker/UPS power budget back into a degree bound.
        """
        require_non_negative(fleet_power_w, "fleet_power_w")
        per_server = fleet_power_w / self.n_servers
        chip = self.server.chip
        fixed = self.server.non_cpu_power_w + chip.idle_chip_power_w
        per_degree = chip.core_power_w * chip.normal_cores
        degree = (per_server - fixed) / per_degree
        return max(0.0, min(degree, chip.max_sprinting_degree))

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def capacity_at_degree(self, degree: float) -> float:
        """Normalised fleet capacity (1.0 = peak-normal) at ``degree``."""
        return self.throughput.capacity(degree)

    def degree_for_demand(self, demand: float) -> float:
        """Smallest degree covering a normalised demand (clamped at max)."""
        require_non_negative(demand, "demand")
        return self.throughput.degree_for_capacity(demand)

    @property
    def max_capacity(self) -> float:
        """Fleet capacity ceiling at the maximum degree (~3.48x)."""
        return self.throughput.max_capacity
