"""Throughput model: computing capacity as a function of sprinting degree.

Section V-A motivates constrained sprinting with a measurement: running
SPECjbb2005 on a quad-core i5, *per-core throughput decreases when the
number of cores increases* — shared caches, memory bandwidth and the
scheduler all dilute per-core speed.  A lower sprinting degree therefore has
higher power efficiency, which is the entire reason the Prediction and
Heuristic strategies beat Greedy on long bursts.

We capture this with a concave quadratic above the normal degree, saturating
exactly at the maximum degree:

    capacity(SDe) = 1 + b x - c x**2,   x = SDe - 1,  SDe in [1, SDe_max]
    capacity(SDe) = SDe                 for SDe < 1

with ``b = 2 (C_max - 1)/(SDe_max - 1)`` and ``c = b / (2 (SDe_max - 1))``
so that capacity(SDe_max) = C_max and capacity'(SDe_max) = 0 — the last
cores lit add almost nothing, the first extra cores add the most.  The
ceiling ``C_max = 2.45`` at the full sprinting degree of 4 is the paper's
best-case improvement factor (Section VII-C): short bursts that the stored
energy fully covers are served right at this capacity limit.  Because
``b < 1`` at the defaults, capacity never exceeds the degree itself —
per-core throughput is strictly below the 12-core baseline whenever extra
cores are active, exactly the SPECjbb observation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import require_non_negative, require_positive

#: Default capacity ceiling at the maximum sprinting degree, calibrated to
#: the paper's 2.45x best-case improvement.
DEFAULT_MAX_CAPACITY = 2.45


@dataclass(frozen=True)
class ThroughputModel:
    """Concave saturating mapping between sprinting degree and capacity.

    Parameters
    ----------
    max_capacity:
        Normalised capacity at ``max_degree``; must lie in
        ``(1, (1 + max_degree)/2]`` so the quadratic stays monotone and
        per-core throughput stays below the normal-operation baseline.
    max_degree:
        Largest admissible sprinting degree (chip total/normal cores).
    """

    max_capacity: float = DEFAULT_MAX_CAPACITY
    max_degree: float = 4.0

    def __post_init__(self) -> None:
        require_positive(self.max_capacity, "max_capacity")
        require_positive(self.max_degree, "max_degree")
        if self.max_degree <= 1.0:
            raise ConfigurationError(
                f"max_degree must exceed 1, got {self.max_degree!r}"
            )
        if self.max_capacity <= 1.0:
            raise ConfigurationError(
                f"max_capacity must exceed 1 (sprinting must help), "
                f"got {self.max_capacity!r}"
            )
        if self.max_capacity > (1.0 + self.max_degree) / 2.0:
            raise ConfigurationError(
                "max_capacity too large for sub-linear per-core scaling: "
                f"must be <= (1 + max_degree)/2, got {self.max_capacity!r}"
            )

    @property
    def _gain(self) -> float:
        """Capacity added between degree 1 and the maximum degree."""
        return self.max_capacity - 1.0

    @property
    def _span(self) -> float:
        """Degree range over which the gain is realised."""
        return self.max_degree - 1.0

    @property
    def _b(self) -> float:
        """Initial slope of the concave branch (capacity per degree at 1+)."""
        return 2.0 * self._gain / self._span

    @property
    def _c(self) -> float:
        """Quadratic curvature coefficient."""
        return self._gain / (self._span * self._span)

    def capacity(self, degree: float) -> float:
        """Normalised computing capacity at a sprinting degree.

        ``capacity(1.0) == 1.0`` is the peak-normal capacity.  Below degree
        1 (some normally-active cores parked) capacity scales linearly.
        """
        d = require_non_negative(degree, "degree")
        if d > self.max_degree + 1e-9:
            raise ConfigurationError(
                f"degree {degree!r} exceeds max_degree {self.max_degree!r}"
            )
        if d <= 1.0:
            return d
        x = d - 1.0
        return 1.0 + self._b * x - self._c * x * x

    def degree_for_capacity(self, capacity: float) -> float:
        """Smallest sprinting degree whose capacity covers ``capacity``.

        The inverse of :meth:`capacity` (the increasing root of the
        quadratic), clamped at ``max_degree`` — the caller must
        admission-control any demand beyond :attr:`max_capacity`.
        """
        c_val = require_non_negative(capacity, "capacity")
        if c_val <= 1.0:
            return c_val
        if c_val >= self.max_capacity:
            return self.max_degree
        b, c = self._b, self._c
        discriminant = b * b - 4.0 * c * (c_val - 1.0)
        # capacity < max_capacity guarantees a positive discriminant.
        x = (b - math.sqrt(max(0.0, discriminant))) / (2.0 * c)
        return min(1.0 + x, self.max_degree)

    def per_core_efficiency(self, degree: float) -> float:
        """Capacity per unit of degree — the power-efficiency signal.

        Strictly decreasing in ``degree`` above 1: this quantity is why
        spreading a burst over a longer, lower-degree sprint serves more
        total requests from the same stored energy.
        """
        d = require_positive(degree, "degree")
        return self.capacity(d) / d

    def marginal_capacity(self, degree: float) -> float:
        """d(capacity)/d(degree) — diminishing returns of extra cores.

        Equals 1 below the normal degree, the initial slope ``b`` just
        above it, and falls linearly to exactly 0 at the maximum degree.
        """
        d = require_positive(degree, "degree")
        if d <= 1.0:
            return 1.0
        if d > self.max_degree + 1e-9:
            raise ConfigurationError(
                f"degree {degree!r} exceeds max_degree {self.max_degree!r}"
            )
        return max(0.0, self._b - 2.0 * self._c * (d - 1.0))
