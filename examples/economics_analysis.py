#!/usr/bin/env python3
"""Is sprinting worth the dark silicon?  The Section V-D economics.

Provisioning cores that stay off most of the time costs real money
($40/core amortised over four years).  Sprinting earns it back two ways:
serving requests that would otherwise be denied ($7,900 per minute of
unavailability) and not permanently losing the affected users (Google's
0.2 %-per-0.4 s measurement).  This example regenerates Fig. 5 and the
paper's ~$19 M worked example.

Run:  python examples/economics_analysis.py
"""

from repro.economics import (
    CoreProvisioningCost,
    fig5_analysis,
    monthly_revenue_for_trace,
)
from repro.workloads.ms_trace import default_ms_trace


def print_panel(users_ratio: float, label: str) -> None:
    points = fig5_analysis(users_ratio=users_ratio)
    by_degree = {}
    for p in points:
        row = by_degree.setdefault(p.max_sprinting_degree, {"C": p.cost_usd})
        row[p.utilization_fraction] = p.revenue_usd
    print(f"{label} (three 5-minute bursts a month, $M/month):")
    print(f"  {'N':>4} {'cost':>7} {'R50':>7} {'R75':>7} {'R100':>7} "
          f"{'profit@R100':>12}")
    for n, row in sorted(by_degree.items()):
        profit = (row[1.0] - row["C"]) / 1e6
        print(f"  {n:>4.1f} {row['C'] / 1e6:>7.2f} {row[0.5] / 1e6:>7.2f} "
              f"{row[0.75] / 1e6:>7.2f} {row[1.0] / 1e6:>7.2f} "
              f"{profit:>12.2f}")
    print()


def main() -> None:
    print_panel(4.0, "Fig. 5a - total users = 4x serveable (U_t = 4U_0)")
    print_panel(6.0, "Fig. 5b - total users = 6x serveable (U_t = 6U_0)")

    # The Section V-D worked example.
    trace = default_ms_trace()
    revenue = monthly_revenue_for_trace(trace)
    cost = CoreProvisioningCost().monthly_cost_usd(4.0)
    print("Section V-D worked example (Fig. 1 workload repeating, N=4):")
    print(f"  monthly sprinting revenue : ${revenue / 1e6:.1f} M "
          "(paper: ~$19 M)")
    print(f"  monthly dark-core cost    : ${cost / 1e6:.2f} M "
          "(paper: $0.47 M)")
    print(f"  revenue / cost            : {revenue / cost:.0f}x")
    print()
    print("Even a facility seeing only three bursts a month clears "
          "~$0.5 M/month of profit when its bursts use the dark cores; "
          "bursty facilities clear orders of magnitude more.")


if __name__ == "__main__":
    main()
