#!/usr/bin/env python3
"""Why data-center-level control matters: uncontrolled vs DCS (Fig. 8).

Replays the MS workload trace twice:

1. **Uncontrolled chip-level sprinting** — every server lights up its dark
   cores to follow demand with no coordination.  A PDU breaker's thermal
   budget runs out minutes into the burst; the trip takes the whole
   facility down.
2. **Data Center Sprinting (Greedy)** — the three-phase controller bounds
   breaker overload, dispatches the distributed UPS and activates the TES,
   sustaining high performance through the entire trace.

Run:  python examples/ms_burst_response.py
"""

import numpy as np

from repro import GreedyStrategy, build_datacenter, default_ms_trace, run_simulation
from repro.core.phases import SprintPhase


def minute_avg(values):
    values = np.asarray(values, dtype=float)
    return values[: len(values) // 60 * 60].reshape(-1, 60).mean(axis=1)


def main() -> None:
    trace = default_ms_trace()

    # --- 1. the disaster baseline -------------------------------------
    dc = build_datacenter()
    baseline = dc.uncontrolled()
    baseline_served = [
        baseline.step(demand, float(i)).served for i, demand in enumerate(trace)
    ]
    print("uncontrolled chip-level sprinting:")
    print(f"  breaker tripped at t = {baseline.trip_time_s:.0f} s "
          f"({baseline.trip_time_s / 60:.1f} min; the paper reports 5 min 20 s)")
    print("  everything downstream lost power - achieved performance is 0 "
          "for the rest of the trace")

    # --- 2. Data Center Sprinting --------------------------------------
    result = run_simulation(build_datacenter(), trace, GreedyStrategy())
    print()
    print("Data Center Sprinting (Greedy):")
    print(f"  sustained the full {trace.duration_s / 60:.0f}-minute trace; "
          f"average performance {result.average_performance:.2f}x")
    for phase in (SprintPhase.PHASE1_CB, SprintPhase.PHASE2_UPS,
                  SprintPhase.PHASE3_TES):
        seconds = result.time_in_phase_s[phase]
        print(f"  {phase.value:<12} {seconds:6.0f} s")

    # --- timeline -------------------------------------------------------
    print()
    print("minute-by-minute (required vs achieved, normalised):")
    required = minute_avg(trace.samples)
    unc = minute_avg(baseline_served)
    dcs = minute_avg(result.served)
    print(f"  {'min':>4} {'required':>9} {'uncontrolled':>13} {'DCS':>7}")
    for m, (r, u, d) in enumerate(zip(required, unc, dcs)):
        marker = "  <- uncontrolled facility dark" if u == 0.0 and r > 0 else ""
        print(f"  {m:>4} {r:>9.2f} {u:>13.2f} {d:>7.2f}{marker}")


if __name__ == "__main__":
    main()
