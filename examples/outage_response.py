#!/usr/bin/env python3
"""Why sprinting must respect the UPS: the outage bridge (Section III-B).

UPS batteries exist to carry the facility through the seconds between a
utility failure and the diesel generator coming up.  Sprinting borrows that
same stored energy — which is exactly why the paper's design treats it as a
budget, not a free resource.  This example plays the classic outage
scenario twice: once with full batteries, once right after a sprint drained
them, and shows the battery-lifetime arithmetic that keeps sprinting free
of battery cost.

Run:  python examples/outage_response.py
"""

from repro.power.lifetime import BatteryLifetimeTracker
from repro.power.ups import BatteryChemistry, UpsBattery
from repro.power.utility import DieselGenerator, bridge_outage

CRITICAL_LOAD_W = 55.0 * 200          # one PDU group at peak-normal
GENERATOR_STARTUP_S = 30.0
OUTAGE_S = 180.0


def play_outage(label: str, ups_energy_j: float) -> None:
    generator = DieselGenerator(
        rated_power_w=CRITICAL_LOAD_W, startup_time_s=GENERATOR_STARTUP_S
    )
    steps = bridge_outage(
        critical_load_w=CRITICAL_LOAD_W,
        outage_duration_s=OUTAGE_S,
        ups_energy_j=ups_energy_j,
        generator=generator,
    )
    unserved = [s for s in steps if not s.served]
    print(f"{label}:")
    if not unserved:
        print(f"  bridged cleanly — UPS carried the first "
              f"{GENERATOR_STARTUP_S:.0f} s, diesel the rest")
    else:
        gap = len(unserved)
        print(f"  FAILED — {gap} s of unserved critical load "
              f"(t = {unserved[0].time_s:.0f}..{unserved[-1].time_s:.0f} s)")
    print()


def main() -> None:
    battery = UpsBattery()  # the paper's 0.5 Ah / ~6 min unit
    full_j = battery.capacity_j * 200

    print(f"critical load: {CRITICAL_LOAD_W / 1e3:.1f} kW "
          f"(one 200-server PDU group)")
    print(f"diesel startup: {GENERATOR_STARTUP_S:.0f} s; "
          f"outage length: {OUTAGE_S:.0f} s")
    print()

    play_outage("full batteries (no recent sprint)", full_j)
    play_outage("batteries at 5% after an aggressive sprint", full_j * 0.05)

    # The lifetime arithmetic of Section IV-B.
    print("battery lifetime budget ([18], depth-weighted wear):")
    tracker = BatteryLifetimeTracker(chemistry=BatteryChemistry.LFP)
    for _ in range(200):                      # the paper's bursty month
        tracker.record_discharge(0.26 * battery.capacity_j, battery.capacity_j)
    print(f"  200 bursts x 26% depth = "
          f"{tracker.cycles_this_month:.1f} full-cycle equivalents")
    print(f"  free monthly budget    = "
          f"{tracker.free_cycles_per_month:.0f} cycles")
    if tracker.within_free_budget:
        print("  within the free envelope: sprinting costs no battery life "
              "(the paper's claim, reproduced)")
    else:
        print(f"  {tracker.excess_cycles_this_month():.1f} cycles over budget")
    heavy = tracker.projected_service_life_years(cycles_per_month=60.0)
    print(f"  (a facility sprinting 6x harder would cut the pack's life to "
          f"{heavy:.1f} of its {BatteryChemistry.LFP.service_life_years} years)")


if __name__ == "__main__":
    main()
