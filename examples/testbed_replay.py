#!/usr/bin/env python3
"""Replaying the paper's hardware-testbed experiment (Figs. 6 and 11).

The rig: a server with two power inputs — a power strip behind a 232 W
circuit breaker, and a UPS behind a relay.  Each second the controller
either overloads the breaker (relay open) or shares the load with the UPS
(relay closed).  Since the idle server power (273 W) already exceeds the
breaker rating, the sprint starts immediately; the experiment measures how
long each policy sustains the workload before the breaker trips.

Run:  python examples/testbed_replay.py
"""

from repro.testbed import (
    CbFirstPolicy,
    ReservedTripTimePolicy,
    no_ups_trip_time_s,
    run_reserve_sweep,
    run_sustained_time,
    testbed_utilization_trace,
)


def main() -> None:
    utilization = testbed_utilization_trace()
    print("testbed: 232 W breaker, 273-428 W server, relay-switched UPS")
    print(f"workload: Yahoo trace at burst degree 1 "
          f"({utilization.duration_s / 60:.0f} minutes of CPU utilisation)")
    print()

    no_ups = no_ups_trip_time_s(utilization)
    print(f"without the UPS the breaker trips after {no_ups:.0f} s "
          "(the paper's rig: 65 s)")
    print()

    print("sustained time vs reserved trip time (Fig. 11b):")
    sweep = run_reserve_sweep(utilization=utilization)
    best = max(sweep, key=lambda p: p.ours_sustained_s)
    for point in sweep:
        marker = "  <- best" if point is best else ""
        print(f"  reserve {point.reserved_trip_time_s:>5.0f} s : "
              f"ours {point.ours_sustained_s:>5.0f} s | "
              f"CB First {point.cb_first_sustained_s:>5.0f} s{marker}")

    print()
    gain = best.ours_sustained_s - best.cb_first_sustained_s
    print(f"best reserve: {best.reserved_trip_time_s:.0f} s "
          f"(paper: 30 s), beating CB First by {gain:.0f} s")
    print(f"no-UPS trip time is {100 * no_ups / best.ours_sustained_s:.0f}% "
          "of our sustained time (paper: 26%)")

    # Show *why* the reserve helps: overload seconds at high server power.
    print()
    print("seconds the breaker was overloaded while the server drew >375 W:")
    for reserve in (10.0, 30.0, 90.0):
        result = run_sustained_time(
            ReservedTripTimePolicy(reserve), utilization
        )
        print(f"  reserve {reserve:>3.0f} s : "
              f"{result.overload_seconds_above(375.0):>4.0f} s of "
              f"{result.cb_overload_seconds:.0f} s total overload")
    print("(low-power overload buys disproportionally more time: halving "
          "the overload quadruples the trip time)")


if __name__ == "__main__":
    main()
