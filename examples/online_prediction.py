#!/usr/bin/env python3
"""The paper's future work, realised: sprinting without an oracle.

The Prediction strategy of the paper needs someone to hand it the burst
duration.  This example runs the extensions of Section V-A's closing
paragraph instead:

* **AdaptivePrediction** — learns burst durations online from completed
  bursts (no external prediction at all);
* **RecedingHorizon** — re-solves, every second, for the sprinting degree
  that maximises the served-demand integral over the remaining burst given
  the remaining energy budget.

The workload repeats the same burst three times; watch the adaptive
strategy get better after the first episode teaches it the duration.

Run:  python examples/online_prediction.py
"""

import numpy as np

from repro import (
    GreedyStrategy,
    build_datacenter,
    build_upper_bound_table,
    simulate_strategy,
)
from repro.core.adaptive import (
    AdaptivePredictionStrategy,
    RecedingHorizonStrategy,
)
from repro.workloads.traces import Trace

BURST_LEVEL = 3.0
BURST_S = 600
GAP_S = 400
EPISODES = 3


def repeated_burst_trace() -> Trace:
    episode = [0.7] * GAP_S + [BURST_LEVEL] * BURST_S
    values = episode * EPISODES + [0.7] * GAP_S
    return Trace(np.asarray(values, dtype=float), 1.0, "repeated-bursts")


def per_episode_performance(result, trace):
    """Average burst-window performance per episode."""
    perfs = []
    for e in range(EPISODES):
        start = e * (GAP_S + BURST_S) + GAP_S
        window = slice(start, start + BURST_S)
        perfs.append(float(result.served[window].mean()))
    return perfs


def main() -> None:
    trace = repeated_burst_trace()
    cluster = build_datacenter().cluster
    print(f"workload: {EPISODES} episodes of a {BURST_LEVEL:g}x, "
          f"{BURST_S // 60}-minute burst")
    print()

    table = build_upper_bound_table(
        burst_durations_min=(1.0, 5.0, 10.0, 15.0),
        burst_degrees=(3.0,),
        candidates=(2.0, 2.5, 3.0, 3.5, 4.0),
    )

    strategies = [
        ("Greedy", GreedyStrategy()),
        ("AdaptivePrediction", AdaptivePredictionStrategy(table)),
        ("RecedingHorizon", RecedingHorizonStrategy(
            cluster, predicted_burst_duration_s=float(BURST_S)
        )),
    ]
    print(f"{'strategy':<20} {'overall':>8}  per-episode burst performance")
    for name, strategy in strategies:
        result = simulate_strategy(trace, strategy)
        episodes = per_episode_performance(result, trace)
        episode_str = "  ".join(f"{p:.2f}x" for p in episodes)
        print(f"{name:<20} {result.average_performance:>7.2f}x  {episode_str}")

    print()
    print("AdaptivePrediction's first episode runs on its prior; once the "
          "episode completes, the learned duration drives the later ones. "
          "RecedingHorizon needs a duration estimate but no table, and "
          "re-optimises as energy drains.")


if __name__ == "__main__":
    main()
