#!/usr/bin/env python3
"""Watch a sprint in the terminal: sparkline view of a full run.

Renders the MS trace run — demand, served performance, and a phase ribbon
(`.` idle, `1` breaker tolerance, `2` UPS, `3` TES) — plus the room
temperature and battery state of charge over time.

Run:  python examples/visual_run.py
"""

from repro import GreedyStrategy, build_datacenter, default_ms_trace, run_simulation
from repro.viz import ascii_chart, render_run, sparkline

WIDTH = 72


def main() -> None:
    datacenter = build_datacenter()
    trace = default_ms_trace()
    result = run_simulation(datacenter, trace, GreedyStrategy())

    print(f"Data Center Sprinting on {trace.name} "
          f"({trace.duration_s / 60:.0f} minutes)")
    print()
    print(render_run(result, width=WIDTH))
    print()

    temperatures = result.series("room_temperature_c")
    print(f"room °C {sparkline(temperatures, WIDTH)}  "
          f"(peak {temperatures.max():.1f} °C of 40 °C)")
    ups = result.series("ups_w")
    print(f"UPS MW  {sparkline(ups / 1e6, WIDTH)}  "
          f"(peak {ups.max() / 1e6:.1f} MW)")
    tes = result.series("tes_heat_w")
    print(f"TES MW  {sparkline(tes / 1e6, WIDTH)}  "
          f"(peak {tes.max() / 1e6:.1f} MW thermal)")
    print()

    print("sprinting degree over the run:")
    print(ascii_chart(result.degrees, width=WIDTH, height=8,
                      label="degree (1.0 normal ... 4.0 all cores)"))


if __name__ == "__main__":
    main()
