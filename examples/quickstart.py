#!/usr/bin/env python3
"""Quickstart: sprint a 10 MW data center through a bursty half hour.

Builds the paper's default facility (180,000 servers, 48-core chips with 12
cores normally active, PUE 1.53, distributed UPS, a 12-minute TES tank),
replays the packaged MS-style workload trace, and prints what Data Center
Sprinting achieved.

Run:  python examples/quickstart.py
"""

from repro import (
    GreedyStrategy,
    build_datacenter,
    default_ms_trace,
    run_simulation,
)


def main() -> None:
    datacenter = build_datacenter()
    trace = default_ms_trace()

    print(f"facility : {datacenter.cluster.n_servers:,} servers, "
          f"{datacenter.cluster.peak_normal_power_w / 1e6:.1f} MW peak-normal IT")
    print(f"workload : {trace.name}, {trace.duration_s / 60:.0f} minutes, "
          f"peak demand {trace.peak:.2f}x of capacity, "
          f"{trace.over_capacity_time_s() / 60:.1f} burst minutes")

    result = run_simulation(datacenter, trace, GreedyStrategy())

    print()
    print(f"average performance improvement : "
          f"{result.average_performance:.2f}x (vs no sprinting)")
    print(f"sprint duration                 : "
          f"{result.sprint_duration_s / 60:.1f} minutes")
    print(f"peak sprinting degree           : {result.peak_degree:.2f} "
          f"(of the chip maximum 4.0)")
    print(f"demand dropped                  : "
          f"{100 * result.drop_fraction:.1f}%")
    print(f"peak room temperature           : "
          f"{result.peak_room_temperature_c:.1f} degC "
          f"(threshold {datacenter.cooling.room.threshold_c:.0f} degC)")

    shares = result.energy_shares
    print()
    print("additional energy came from:")
    print(f"  UPS batteries        {100 * shares['ups']:5.1f}%")
    print(f"  TES tank             {100 * shares['tes']:5.1f}%")
    print(f"  breaker tolerance    {100 * shares['cb']:5.1f}%")

    tripped = (datacenter.topology.pdu.breaker.tripped
               or datacenter.topology.dc_breaker.tripped)
    print()
    print(f"breakers tripped: {'YES (bug!)' if tripped else 'no'} — "
          "sprinting stayed within every power and thermal limit")


if __name__ == "__main__":
    main()
