#!/usr/bin/env python3
"""Comparing the four sprinting-degree strategies on a long burst.

Greedy follows demand blindly; the Oracle searches the best constant upper
bound with perfect knowledge; Prediction plans from a predicted burst
duration through the Oracle-built upper-bound table (Eq. 1 of the paper);
Heuristic steers an initial estimate by remaining-energy over
remaining-time (Eqs. 2-3).  On a 15-minute 3.2x Yahoo burst the stored
energy cannot cover Greedy's full-degree sprint, so the constrained
strategies serve noticeably more of the burst.

Run:  python examples/strategy_comparison.py
"""

from repro import (
    GreedyStrategy,
    HeuristicStrategy,
    PredictionStrategy,
    build_datacenter,
    build_upper_bound_table,
    generate_yahoo_trace,
    oracle_for_trace,
    simulate_strategy,
)
from repro.core.strategies import FixedUpperBoundStrategy

BURST_DEGREE = 3.2
BURST_DURATION_MIN = 15.0
CANDIDATES = (2.0, 2.5, 3.0, 3.5, 4.0)


def main() -> None:
    trace = generate_yahoo_trace(
        burst_degree=BURST_DEGREE, burst_duration_min=BURST_DURATION_MIN
    )
    cluster = build_datacenter().cluster
    print(f"workload: {BURST_DEGREE:g}x burst for "
          f"{BURST_DURATION_MIN:g} minutes (Yahoo trace)")
    print()

    # Oracle: exhaustive search over constant upper bounds.
    oracle = oracle_for_trace(trace, candidates=CANDIDATES)
    print(f"oracle search picked upper bound {oracle.upper_bound:g} "
          f"(capacity {cluster.capacity_at_degree(oracle.upper_bound):.2f}x)")

    # Prediction: needs the Oracle-built table plus a duration estimate.
    table = build_upper_bound_table(
        burst_durations_min=(1.0, 5.0, 10.0, 15.0),
        burst_degrees=(2.6, 3.0, 3.4),
        candidates=CANDIDATES,
    )
    prediction = PredictionStrategy(
        table,
        predicted_burst_duration_s=trace.over_capacity_time_s(),
        max_degree=4.0,
    )

    # Heuristic: needs the best-average-degree estimate; take the truth
    # from an Oracle-bound run (zero estimation error).
    oracle_run = simulate_strategy(
        trace, FixedUpperBoundStrategy(oracle.upper_bound)
    )
    sde_true = float(oracle_run.degrees[oracle_run.demand > 1.0].mean())
    heuristic = HeuristicStrategy(
        estimated_best_degree=sde_true,
        additional_power_fn=cluster.additional_power_at_degree_w,
    )

    strategies = [
        ("Greedy", GreedyStrategy()),
        ("Prediction", prediction),
        ("Heuristic", heuristic),
        ("Oracle", FixedUpperBoundStrategy(oracle.upper_bound)),
    ]
    print()
    print(f"{'strategy':<12} {'avg perf':>9} {'dropped':>8} "
          f"{'peak degree':>12} {'sprint min':>11}")
    for name, strategy in strategies:
        result = simulate_strategy(trace, strategy)
        print(f"{name:<12} {result.average_performance:>8.2f}x "
              f"{100 * result.drop_fraction:>7.1f}% "
              f"{result.peak_degree:>12.2f} "
              f"{result.sprint_duration_s / 60:>11.1f}")

    print()
    print("Greedy burns the stored energy at the inefficient full degree "
          "and crashes mid-burst; the constrained strategies stretch the "
          "same joules across the whole burst.")


if __name__ == "__main__":
    main()
