#!/usr/bin/env python3
"""A skewed burst: one tenant's racks light up, the rest idle.

The paper evaluates an evenly-loaded facility; real bursts are lopsided —
breaking news hits one service's PDU group.  This example runs the
multi-group controller over an explicit four-group topology and shows the
Section V-B coordination at work: the bursting group overloads its own
breaker AND borrows the substation budget the idle groups are not using,
while the children's sum always respects the parent bound.

Run:  python examples/skewed_burst.py
"""

from repro.core.multigroup import build_multigroup

DEMANDS = [3.0, 0.5, 0.5, 0.5]   # group 0 bursts; the rest idle
DURATION_S = 900


def main() -> None:
    controller = build_multigroup(n_groups=4, servers_per_group=200)
    own_rating = controller.topology.pdus[0].rated_power_w
    print("four PDU groups of 200 servers; group 0 bursts to 3.0x while "
          "groups 1-3 idle at 0.5x")
    print(f"each PDU breaker rated {own_rating / 1e3:.2f} kW; substation "
          f"rated {controller.topology.dc_breaker.rated_power_w / 1e3:.0f} kW")
    print()

    for t in range(DURATION_S):
        controller.step(DEMANDS, float(t))

    print("minute-by-minute, group 0 (the bursting group):")
    print(f"  {'min':>4} {'degree':>7} {'served':>7} {'grid kW':>8} "
          f"{'UPS kW':>7} {'over own rating?':>17}")
    for m in range(0, DURATION_S // 60):
        steps = controller.history[m * 60:(m + 1) * 60]
        g0 = [s.groups[0] for s in steps]
        degree = sum(g.degree for g in g0) / len(g0)
        served = sum(g.served for g in g0) / len(g0)
        grid = sum(g.grid_w for g in g0) / len(g0)
        ups = sum(g.ups_w for g in g0) / len(g0)
        over = "yes" if grid > own_rating else "no"
        print(f"  {m:>4} {degree:>7.2f} {served:>7.2f} {grid / 1e3:>8.2f} "
              f"{ups / 1e3:>7.2f} {over:>17}")

    print()
    tripped = controller.topology.dc_breaker.tripped or any(
        p.breaker.tripped for p in controller.topology.pdus
    )
    print(f"breakers tripped: {'YES' if tripped else 'no'}")
    socs = [p.ups.state_of_charge for p in controller.topology.pdus]
    print("UPS state of charge per group: "
          + ", ".join(f"{s:.0%}" for s in socs))
    print("(only the bursting group's batteries discharged; the idle "
          "groups lent grid budget, not energy)")


if __name__ == "__main__":
    main()
