#!/usr/bin/env python3
"""Sprinting capacity follows the sun.

The introduction's third reason for dark cores: reliance on intermittent
renewables.  A facility whose feed blends firm grid power with on-site
solar has a *time-varying* sustainable envelope — and the headroom a burst
can draw on varies with it.  This example computes the envelope over a day
and replays the same flash crowd at noon (solar peak) and at night (grid
only).

Run:  python examples/renewable_constrained.py
"""

from repro import DataCenterConfig, GreedyStrategy, simulate_strategy
from repro.power.renewable import RenewableSupply, SolarProfile
from repro.workloads.library import generate_flash_crowd_trace

#: Firm grid allocation: exactly the facility's peak-normal draw.
GRID_W = 9.9e6 * 1.53
#: On-site solar nameplate: up to 20 % extra at noon.
SOLAR_NAMEPLATE_W = GRID_W * 0.20


def headroom_at(supply: RenewableSupply, time_s: float) -> float:
    """Provisioned headroom over peak-normal at an absolute time."""
    return max(0.0, supply.available_power_w(time_s) / GRID_W - 1.0)


def main() -> None:
    supply = RenewableSupply(
        grid_power_w=GRID_W,
        renewable_nameplate_w=SOLAR_NAMEPLATE_W,
        solar=SolarProfile(),
    )
    print("sustainable envelope over the day (grid + on-site solar):")
    for hour in range(0, 24, 3):
        t = hour * 3600.0
        print(f"  {hour:02d}:00  {supply.available_power_w(t) / 1e6:6.1f} MW "
              f"(headroom {headroom_at(supply, t):5.1%}, "
              f"renewable share {supply.renewable_share(t):5.1%})")

    trace = generate_flash_crowd_trace(spike_magnitude=3.0)
    print()
    print("the same 3.0x flash crowd, arriving at noon vs at night:")
    for label, t in (("noon", 12 * 3600.0), ("night", 0.0)):
        config = DataCenterConfig(
            dc_headroom_fraction=headroom_at(supply, t)
        )
        result = simulate_strategy(trace, GreedyStrategy(), config)
        print(f"  {label:<6} headroom {config.dc_headroom_fraction:5.1%} "
              f"-> {result.average_performance:.2f}x "
              f"({100 * result.drop_fraction:.1f}% dropped)")
    print()
    print("the solar-boosted envelope gives the midday burst more breaker "
          "headroom to sprint into; at night the stored energy has to "
          "carry more of it.")


if __name__ == "__main__":
    main()
