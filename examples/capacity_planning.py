#!/usr/bin/env python3
"""Capacity planning: how much storage do your bursts actually need?

A downstream operator's workflow: take your burst profile (here, a
breaking-news flash crowd), sweep the UPS x TES sizing grid with the full
simulator in the loop, and pick the cheapest configuration that meets your
service target.

Run:  python examples/capacity_planning.py
"""

from repro.simulation.planning import sizing_frontier, smallest_ups_for_target
from repro.workloads.library import generate_flash_crowd_trace

TARGET_PERFORMANCE = 1.6


def main() -> None:
    trace = generate_flash_crowd_trace(spike_magnitude=3.2)
    print(f"burst profile: {trace.name}, "
          f"{trace.over_capacity_time_s() / 60:.1f} over-capacity minutes")
    print()

    print("UPS x TES sizing frontier (average performance / drop %):")
    points = sizing_frontier(
        trace,
        ups_candidates_ah=(0.25, 0.5, 1.0),
        tes_candidates_min=(6.0, 12.0, 24.0),
    )
    tes_values = sorted({p.tes_runtime_min for p in points})
    header = "UPS x TES"
    print(f"  {header:>10} " + " ".join(
        f"{m:>13.0f}min" for m in tes_values))
    for ah in sorted({p.ups_capacity_ah for p in points}):
        row = [p for p in points if p.ups_capacity_ah == ah]
        row.sort(key=lambda p: p.tes_runtime_min)
        cells = " ".join(
            f"{p.average_performance:>7.2f}x/{100 * p.drop_fraction:4.1f}%"
            for p in row
        )
        print(f"  {ah:>8.2f}Ah {cells}")

    print()
    print(f"smallest battery meeting a {TARGET_PERFORMANCE:g}x target:")
    point = smallest_ups_for_target(trace, TARGET_PERFORMANCE)
    if point is None:
        print("  no candidate reaches the target - provision more storage "
              "or constrain the degree")
    else:
        print(f"  {point.ups_capacity_ah:g} Ah per server "
              f"-> {point.average_performance:.2f}x "
              f"({100 * point.drop_fraction:.1f}% dropped)")
        print("  (the paper's 0.5 Ah default corresponds to ~6 minutes at "
              "peak-normal power)")


if __name__ == "__main__":
    main()
