# Convenience targets for the Data Center Sprinting reproduction.

.PHONY: install test bench report examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

report:
	python -m repro report REPORT.md

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
