# Convenience targets for the Data Center Sprinting reproduction.

.PHONY: install check lint lint-changed test bench bench-check report examples sweep-smoke backends-smoke fault-smoke clean

install:
	pip install -e . || python setup.py develop

check: lint test

# Domain-aware static analysis (repro.analysis) always runs; mypy and ruff
# run when installed (pip install -e .[lint]) and their failures are fatal.
lint:
	python -m repro lint src
	@if command -v mypy >/dev/null 2>&1; then \
		echo "mypy --strict"; mypy --strict src/repro || exit 1; \
	else echo "mypy not installed; skipping (CI enforces it)"; fi
	@if command -v ruff >/dev/null 2>&1; then \
		echo "ruff check"; ruff check src tests || exit 1; \
	else echo "ruff not installed; skipping (CI enforces it)"; fi

# Incremental lint for the edit loop: the whole tree is still analysed
# (cross-file rules need it) but only findings in files changed since
# origin/main are reported.
lint-changed:
	python -m repro lint src --changed-since origin/main

test:
	pytest tests/

# Engine throughput first (recording machine-readable numbers into
# BENCH_engine.json — see docs/PERFORMANCE.md), then the figure suite.
bench:
	pytest benchmarks/bench_engine_performance.py \
		benchmarks/bench_batch_kernel.py \
		benchmarks/bench_span_engine.py \
		benchmarks/bench_sweep_grid.py --benchmark-only -s \
		--benchmark-json=BENCH_engine.json
	pytest benchmarks/ --benchmark-only -s \
		--ignore=benchmarks/bench_engine_performance.py \
		--ignore=benchmarks/bench_batch_kernel.py \
		--ignore=benchmarks/bench_span_engine.py \
		--ignore=benchmarks/bench_sweep_grid.py

# Regression gate: run the engine benchmarks fresh and compare against the
# committed baseline (fail on a >25% throughput drop).  Absolute numbers —
# for machines unlike the baseline's, use
# `python benchmarks/check_bench.py BENCH_engine.json --relative-to
# bench_full_ms_run` (what CI does).
bench-check:
	pytest benchmarks/bench_engine_performance.py \
		benchmarks/bench_batch_kernel.py \
		benchmarks/bench_span_engine.py \
		benchmarks/bench_sweep_grid.py --benchmark-only -s \
		--benchmark-json=BENCH_engine.json
	python benchmarks/check_bench.py BENCH_engine.json

report:
	python -m repro report REPORT.md

# Exercise the parallel sweep engine end-to-end: a 2-worker Oracle-table
# build on a small grid, once cold and once from the warm cache.
sweep-smoke:
	rm -rf .repro-sweep-smoke
	python -m repro sweep --table --workers 2 \
		--cache-dir .repro-sweep-smoke \
		--durations 1,5 --degrees 2.8,3.2 --candidates 2.0,3.0,4.0
	python -m repro sweep --table --workers 2 \
		--cache-dir .repro-sweep-smoke \
		--durations 1,5 --degrees 2.8,3.2 --candidates 2.0,3.0,4.0 \
		| tee /dev/stderr | grep -q "0 miss(es)"
	rm -rf .repro-sweep-smoke
	@echo "sweep smoke ok: warm rerun answered entirely from cache"

# Exercise the work-queue backend end-to-end: two sweep-worker processes
# drain the queue a driver fills, and the resulting table must be
# line-identical to the in-process backend's on the same grid.
backends-smoke:
	rm -rf .repro-smoke-queue .repro-smoke-cache-q .repro-smoke-cache-i \
		.repro-smoke-q.txt .repro-smoke-i.txt
	python -m repro sweep-worker .repro-smoke-queue --idle-timeout 60 & \
	python -m repro sweep-worker .repro-smoke-queue --idle-timeout 60 & \
	python -m repro sweep --table \
		--backend work-queue --queue-dir .repro-smoke-queue \
		--cache-dir .repro-smoke-cache-q \
		--durations 1,5 --degrees 2.8,3.2 --candidates 2.0,3.0,4.0 \
		| grep -v "sweep engine" > .repro-smoke-q.txt; \
	wait
	python -m repro sweep --table \
		--backend in-process \
		--cache-dir .repro-smoke-cache-i \
		--durations 1,5 --degrees 2.8,3.2 --candidates 2.0,3.0,4.0 \
		| grep -v "sweep engine" > .repro-smoke-i.txt
	diff .repro-smoke-q.txt .repro-smoke-i.txt
	python -m repro cache gc --dir .repro-smoke-cache-q --max-age-s 0 \
		| tee /dev/stderr | grep -q "removed"
	rm -rf .repro-smoke-queue .repro-smoke-cache-q .repro-smoke-cache-i \
		.repro-smoke-q.txt .repro-smoke-i.txt
	@echo "backends smoke ok: work-queue table identical to in-process"

# Exercise fault injection and graceful degradation end-to-end: a fault
# mid-sprint must degrade the run, not crash it, and a faulted sweep must
# not be answered from the clean-run cache.
fault-smoke:
	python -m repro simulate --fault breaker@120s:fraction=0.5 \
		| tee /dev/stderr | grep -q "degraded to admission-control-only"
	python -m repro sweep --headroom --no-cache \
		--fault chiller@300s \
		| tee /dev/stderr | grep -q "degraded at"
	@echo "fault smoke ok: faulted runs degrade gracefully and complete"

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; \
		python $$ex > /dev/null || exit 1; \
	done; echo "all examples ran"

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	rm -rf .repro-sweep-cache .repro-sweep-smoke
