"""Tests for trace file I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.io import (
    load_trace_csv,
    load_trace_json,
    save_trace_csv,
    save_trace_json,
)
from repro.workloads.ms_trace import default_ms_trace
from repro.workloads.traces import Trace


def make_trace(dt=1.0):
    return Trace(np.array([0.5, 1.5, 2.0, 0.8]), dt, "io-test")


class TestCsv:
    def test_round_trip(self, tmp_path):
        original = make_trace()
        path = save_trace_csv(original, tmp_path / "trace.csv")
        restored = load_trace_csv(path)
        assert np.allclose(restored.samples, original.samples)
        assert restored.dt_s == original.dt_s

    def test_round_trip_preserves_exact_values(self, tmp_path):
        original = default_ms_trace()
        path = save_trace_csv(original, tmp_path / "ms.csv")
        restored = load_trace_csv(path)
        assert np.array_equal(restored.samples, original.samples)

    def test_dt_inferred_from_time_column(self, tmp_path):
        original = make_trace(dt=5.0)
        path = save_trace_csv(original, tmp_path / "trace.csv")
        restored = load_trace_csv(path)
        assert restored.dt_s == pytest.approx(5.0)

    def test_demand_only_column(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("demand\n0.5\n1.5\n2.0\n")
        trace = load_trace_csv(path, dt_s=2.0)
        assert trace.samples.tolist() == [0.5, 1.5, 2.0]
        assert trace.dt_s == 2.0

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "myworkload.csv"
        path.write_text("demand\n1.0\n")
        assert load_trace_csv(path).name == "myworkload"

    def test_irregular_sampling_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,demand\n0,1.0\n1,1.0\n5,1.0\n")
        with pytest.raises(ConfigurationError):
            load_trace_csv(path)

    def test_unknown_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("watts\n100\n")
        with pytest.raises(ConfigurationError):
            load_trace_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ConfigurationError):
            load_trace_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("demand\n")
        with pytest.raises(ConfigurationError):
            load_trace_csv(path)


class TestJson:
    def test_round_trip(self, tmp_path):
        original = make_trace(dt=3.0)
        path = save_trace_json(original, tmp_path / "trace.json")
        restored = load_trace_json(path)
        assert np.array_equal(restored.samples, original.samples)
        assert restored.dt_s == original.dt_s
        assert restored.name == original.name

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"dt_s": 1.0}')
        with pytest.raises(ConfigurationError):
            load_trace_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_trace_json(path)

    def test_loaded_trace_runs_through_simulator(self, tmp_path):
        from repro.core.strategies import GreedyStrategy
        from repro.simulation.config import DataCenterConfig
        from repro.simulation.engine import simulate_strategy

        original = Trace(
            np.array([0.8] * 30 + [2.2] * 60 + [0.8] * 30), 1.0, "user"
        )
        path = save_trace_json(original, tmp_path / "user.json")
        restored = load_trace_json(path)
        result = simulate_strategy(
            restored,
            GreedyStrategy(),
            DataCenterConfig(n_pdus=2, servers_per_pdu=50),
        )
        assert result.average_performance > 1.0
