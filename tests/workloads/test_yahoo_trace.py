"""Tests for the synthetic Yahoo-style trace and burst injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import find_bursts
from repro.workloads.yahoo_trace import (
    BURST_START_S,
    generate_yahoo_aggregate,
    generate_yahoo_trace,
    inject_burst,
)


class TestAggregate:
    def test_normalised_to_unit_peak(self):
        agg = generate_yahoo_aggregate()
        assert agg.peak == pytest.approx(1.0)

    def test_smooth_compared_to_ms(self, ms_trace):
        """The 70-server aggregate 'does not change so severely'."""
        agg = generate_yahoo_aggregate()
        agg_steps = np.abs(np.diff(agg.samples)).mean()
        ms_steps = np.abs(np.diff(ms_trace.samples)).mean()
        assert agg_steps < ms_steps

    def test_duration(self):
        assert generate_yahoo_aggregate().duration_s == pytest.approx(1800.0)

    def test_deterministic(self):
        a = generate_yahoo_aggregate()
        b = generate_yahoo_aggregate()
        assert np.array_equal(a.samples, b.samples)

    def test_no_over_capacity_without_burst(self):
        agg = generate_yahoo_aggregate()
        assert agg.over_capacity_time_s() <= 2.0


class TestBurstInjection:
    def test_burst_window_position(self):
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)
        bursts = find_bursts(trace)
        assert len(bursts) >= 1
        main = max(bursts, key=lambda b: b.duration_s)
        assert main.start_s == pytest.approx(BURST_START_S, abs=5.0)
        assert main.duration_s == pytest.approx(15 * 60.0, rel=0.05)

    def test_burst_peak_tracks_degree(self):
        for degree in (2.6, 3.2, 3.6):
            trace = generate_yahoo_trace(burst_degree=degree)
            assert trace.peak == pytest.approx(degree, rel=0.15)

    def test_burst_multiplies_base_shape(self):
        """Demand during the burst is the base shape times the degree."""
        agg = generate_yahoo_aggregate()
        trace = inject_burst(agg, 3.0, 10.0)
        i0 = int(BURST_START_S)
        i1 = i0 + 600
        ratio = trace.samples[i0:i1] / np.maximum(agg.samples[i0:i1], 1e-9)
        assert np.median(ratio) == pytest.approx(3.0, rel=0.05)

    def test_outside_burst_unchanged(self):
        agg = generate_yahoo_aggregate()
        trace = inject_burst(agg, 3.0, 5.0)
        assert np.array_equal(trace.samples[:299], agg.samples[:299])
        assert np.array_equal(trace.samples[610:], agg.samples[610:])

    def test_duration_sweep(self):
        for dur in (1, 5, 10, 15):
            trace = generate_yahoo_trace(burst_degree=3.0, burst_duration_min=dur)
            oc = trace.over_capacity_time_s()
            assert oc == pytest.approx(dur * 60.0, rel=0.1, abs=10.0)

    def test_burst_degree_must_exceed_one(self):
        agg = generate_yahoo_aggregate()
        with pytest.raises(ConfigurationError):
            inject_burst(agg, 1.0, 5.0)

    def test_burst_must_fit_in_trace(self):
        agg = generate_yahoo_aggregate()
        with pytest.raises(ConfigurationError):
            inject_burst(agg, 3.0, 60.0)

    def test_deterministic(self):
        a = generate_yahoo_trace()
        b = generate_yahoo_trace()
        assert np.array_equal(a.samples, b.samples)


class TestServerDecomposition:
    def test_seventy_servers_by_default(self):
        from repro.workloads.yahoo_trace import generate_yahoo_server_traces

        servers = generate_yahoo_server_traces()
        assert len(servers) == 70

    def test_sum_reproduces_aggregate_exactly(self):
        from repro.workloads.yahoo_trace import (
            generate_yahoo_aggregate,
            generate_yahoo_server_traces,
        )

        servers = generate_yahoo_server_traces(n_servers=10)
        total = np.sum([s.samples for s in servers], axis=0)
        aggregate = generate_yahoo_aggregate()
        assert np.allclose(total, aggregate.samples, rtol=1e-9)

    def test_individual_servers_are_burstier_than_aggregate(self):
        """Section VI-C's premise: single-server traces swing far more
        than the 70-server aggregate."""
        from repro.workloads.yahoo_trace import (
            generate_yahoo_aggregate,
            generate_yahoo_server_traces,
        )

        servers = generate_yahoo_server_traces(n_servers=10)
        aggregate = generate_yahoo_aggregate()

        def relative_variation(trace):
            return float(np.std(trace.samples) / np.mean(trace.samples))

        agg_variation = relative_variation(aggregate)
        server_variations = [relative_variation(s) for s in servers]
        assert min(server_variations) > agg_variation

    def test_deterministic(self):
        from repro.workloads.yahoo_trace import generate_yahoo_server_traces

        a = generate_yahoo_server_traces(n_servers=5)
        b = generate_yahoo_server_traces(n_servers=5)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.samples, tb.samples)

    def test_invalid_count(self):
        from repro.errors import ConfigurationError
        from repro.workloads.yahoo_trace import generate_yahoo_server_traces

        with pytest.raises(ConfigurationError):
            generate_yahoo_server_traces(n_servers=0)
