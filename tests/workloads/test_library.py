"""Tests for the additional workload families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.library import (
    generate_batch_trace,
    generate_diurnal_trace,
    generate_flash_crowd_trace,
)
from repro.workloads.traces import find_bursts


class TestFlashCrowd:
    def test_shape(self):
        trace = generate_flash_crowd_trace(spike_magnitude=3.4, onset_s=300.0)
        assert trace.samples[:280].max() < 1.0
        assert trace.peak == pytest.approx(3.4, rel=0.1)
        # The spike decays: later demand is between baseline and peak.
        assert trace.samples[1500] < trace.samples[400]

    def test_near_instant_onset(self):
        trace = generate_flash_crowd_trace(onset_s=300.0, rise_s=30.0)
        assert trace.samples[295] < 1.0
        assert trace.samples[340] > 2.5

    def test_one_dominant_burst(self):
        """Noise frays the decay tail into slivers, but one interval
        holds nearly all the over-capacity time."""
        trace = generate_flash_crowd_trace()
        bursts = find_bursts(trace)
        main = max(bursts, key=lambda b: b.duration_s)
        assert main.start_s == pytest.approx(305.0, abs=10.0)
        assert main.duration_s >= 0.8 * trace.over_capacity_time_s()

    def test_decay_tau_controls_burst_length(self):
        short = generate_flash_crowd_trace(decay_tau_s=200.0)
        long = generate_flash_crowd_trace(decay_tau_s=900.0)
        assert long.over_capacity_time_s() > short.over_capacity_time_s()

    def test_deterministic(self):
        a = generate_flash_crowd_trace()
        b = generate_flash_crowd_trace()
        assert np.array_equal(a.samples, b.samples)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_flash_crowd_trace(spike_magnitude=0.9)
        with pytest.raises(ConfigurationError):
            generate_flash_crowd_trace(onset_s=5000.0, duration_s=1000.0)


class TestDiurnal:
    def test_never_exceeds_capacity(self):
        trace = generate_diurnal_trace()
        assert trace.peak <= 1.0

    def test_day_night_contrast(self):
        trace = generate_diurnal_trace(dt_s=10.0)
        hour = 360  # samples per hour
        night = trace.samples[3 * hour:4 * hour].mean()
        morning = trace.samples[10 * hour:11 * hour].mean()
        assert morning > 2.0 * night

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_diurnal_trace(low=0.9, high=0.5)


class TestBatch:
    def test_plateaus_below_capacity(self):
        trace = generate_batch_trace()
        assert trace.over_capacity_time_s() <= 5.0

    def test_levels_visible(self):
        trace = generate_batch_trace(levels=(0.5, 0.9))
        first_half = trace.samples[: len(trace) // 2 - 10].mean()
        second_half = trace.samples[len(trace) // 2 + 10:].mean()
        assert second_half > first_half

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_batch_trace(levels=(1.2,))
        with pytest.raises(ConfigurationError):
            generate_batch_trace(levels=())


class TestSprintingValueByFamily:
    def test_sprinting_helps_flash_crowds_not_batch(self):
        """Sprinting exists for the flash crowd; on pure batch load it
        (correctly) changes nothing."""
        from repro.core.strategies import GreedyStrategy
        from repro.simulation.config import DataCenterConfig
        from repro.simulation.engine import simulate_strategy

        small = DataCenterConfig(n_pdus=2, servers_per_pdu=50)
        crowd = simulate_strategy(
            generate_flash_crowd_trace(), GreedyStrategy(), small
        )
        batch = simulate_strategy(
            generate_batch_trace(), GreedyStrategy(), small
        )
        assert crowd.average_performance > 1.5
        assert batch.average_performance == pytest.approx(1.0)
        assert batch.peak_degree <= 1.0 + 1e-9
