"""Tests for burst predictors and the online burst detector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.prediction import (
    ErroredPredictor,
    OnlineBurstDetector,
    predicted_burst_duration_s,
)
from repro.workloads.traces import Trace

import numpy as np


class TestErroredPredictor:
    def test_zero_error_is_exact(self):
        assert ErroredPredictor(100.0, 0.0).predict() == pytest.approx(100.0)

    def test_positive_error_overestimates(self):
        assert ErroredPredictor(100.0, 0.6).predict() == pytest.approx(160.0)

    def test_minus_100_percent_predicts_zero(self):
        assert ErroredPredictor(100.0, -1.0).predict() == 0.0

    def test_error_below_minus_100_rejected(self):
        with pytest.raises(ConfigurationError):
            ErroredPredictor(100.0, -1.1)

    def test_predicted_burst_duration_from_trace(self):
        trace = Trace(np.array([0.5, 1.5, 1.5, 0.5]), 1.0)
        assert predicted_burst_duration_s(trace, 0.0) == pytest.approx(2.0)
        assert predicted_burst_duration_s(trace, 0.5) == pytest.approx(3.0)


class TestOnlineBurstDetector:
    def test_detects_burst_start(self):
        det = OnlineBurstDetector()
        assert not det.observe(0.8, 0.0)
        assert det.observe(1.2, 1.0)
        assert det.burst_started_at_s == pytest.approx(1.0)

    def test_time_in_burst(self):
        det = OnlineBurstDetector()
        det.observe(1.5, 10.0)
        assert det.time_in_burst_s(25.0) == pytest.approx(15.0)

    def test_no_burst_time_outside_burst(self):
        det = OnlineBurstDetector()
        det.observe(0.5, 0.0)
        assert det.time_in_burst_s(10.0) == 0.0

    def test_short_valley_does_not_end_burst(self):
        """Valleys shorter than the hold-off keep the episode alive — the
        MS trace's consecutive bursts are one sprinting episode."""
        det = OnlineBurstDetector(hold_off_s=120.0)
        det.observe(1.5, 0.0)
        for t in range(1, 100):
            det.observe(0.8, float(t))
        assert det.in_burst
        assert det.observe(1.5, 100.0)
        assert det.burst_started_at_s == pytest.approx(0.0)

    def test_long_valley_ends_burst(self):
        det = OnlineBurstDetector(hold_off_s=120.0)
        det.observe(1.5, 0.0)
        in_burst = True
        for t in range(1, 200):
            in_burst = det.observe(0.8, float(t))
        assert not in_burst

    def test_new_burst_after_gap_restarts_clock(self):
        det = OnlineBurstDetector(hold_off_s=10.0)
        det.observe(1.5, 0.0)
        for t in range(1, 20):
            det.observe(0.5, float(t))
        det.observe(1.5, 100.0)
        assert det.burst_started_at_s == pytest.approx(100.0)

    def test_reset(self):
        det = OnlineBurstDetector()
        det.observe(1.5, 0.0)
        det.reset()
        assert not det.in_burst
        assert det.burst_started_at_s is None


class TestHoldOffBoundaries:
    """Regression tests for the hold-off window's edge cases.

    The detector used to record the start of a below-capacity spell and
    only *check* the elapsed hold-off on the following sample, so a
    ``hold_off_s=0`` detector reported one extra in-burst sample after
    demand fell back to capacity.
    """

    def test_zero_hold_off_ends_burst_immediately(self):
        det = OnlineBurstDetector(hold_off_s=0.0)
        assert det.observe(1.5, 0.0)
        assert det.observe(0.9, 1.0) is False

    def test_zero_hold_off_tracks_every_crossing(self):
        det = OnlineBurstDetector(hold_off_s=0.0)
        demands = [1.5, 0.9, 1.5, 0.9]
        states = [det.observe(d, float(t)) for t, d in enumerate(demands)]
        assert states == [True, False, True, False]

    def test_demand_exactly_at_capacity_never_starts_a_burst(self):
        """A burst needs demand strictly above capacity; == capacity is
        the baseline serving exactly at its limit."""
        det = OnlineBurstDetector(hold_off_s=0.0)
        assert det.observe(1.0, 0.0) is False
        assert not det.in_burst

    def test_demand_falling_to_capacity_ends_the_burst(self):
        det = OnlineBurstDetector(hold_off_s=0.0)
        assert det.observe(1.1, 0.0)
        assert det.observe(1.0, 1.0) is False

    def test_hold_off_expires_on_the_exact_boundary_sample(self):
        """With hold_off_s=2 the burst ends on the sample where the
        below-capacity spell reaches exactly 2 s, not one sample later."""
        det = OnlineBurstDetector(hold_off_s=2.0)
        det.observe(1.5, 0.0)
        assert det.observe(0.9, 1.0) is True    # spell starts
        assert det.observe(0.9, 2.0) is True    # 1 s elapsed
        assert det.observe(0.9, 3.0) is False   # 2 s elapsed: over
