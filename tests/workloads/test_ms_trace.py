"""Tests for the synthetic MS-style trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.ms_trace import (
    MS_REAL_BURST_DURATION_S,
    MS_TRACE_DURATION_S,
    default_ms_trace,
    generate_ms_family_trace,
    generate_ms_trace,
)


class TestReferenceTrace:
    def test_duration_is_30_minutes(self, ms_trace):
        assert ms_trace.duration_s == pytest.approx(1800.0)

    def test_deterministic(self):
        a = generate_ms_trace()
        b = generate_ms_trace()
        assert np.array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self):
        a = generate_ms_trace(seed=1)
        b = generate_ms_trace(seed=2)
        assert not np.array_equal(a.samples, b.samples)

    def test_over_capacity_time_near_paper_value(self, ms_trace):
        """The paper's MS trace has a 16.2-minute aggregated burst time."""
        oc_min = ms_trace.over_capacity_time_s() / 60.0
        assert MS_REAL_BURST_DURATION_S / 60.0 == pytest.approx(16.2)
        assert 15.0 <= oc_min <= 18.5

    def test_peak_above_three(self, ms_trace):
        """The raw trace peaks above 3x of the no-sprinting capacity."""
        assert 3.0 < ms_trace.peak < 3.9

    def test_bursty_structure(self, ms_trace):
        """Both lulls (below 1) and bursts (above 2) are present."""
        assert (ms_trace.samples < 1.0).mean() > 0.2
        assert (ms_trace.samples > 2.0).mean() > 0.2

    def test_default_equals_generate(self, ms_trace):
        assert np.array_equal(ms_trace.samples, default_ms_trace().samples)

    def test_non_negative(self, ms_trace):
        assert (ms_trace.samples >= 0.0).all()

    def test_longer_duration_repeats_pattern(self):
        long = generate_ms_trace(duration_s=3600)
        assert long.duration_s == pytest.approx(3600.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            generate_ms_trace(duration_s=0)


class TestFamilyTraces:
    def test_burst_duration_tracks_request(self):
        for target_min in (10.0, 17.0, 30.0):
            trace = generate_ms_family_trace(target_min * 60.0)
            measured = trace.over_capacity_time_s() / 60.0
            assert measured == pytest.approx(target_min, rel=0.2)

    def test_long_family_trace_extends_window(self):
        trace = generate_ms_family_trace(70 * 60.0)
        assert trace.duration_s > MS_TRACE_DURATION_S

    def test_short_family_trace_keeps_30_minutes(self):
        trace = generate_ms_family_trace(10 * 60.0)
        assert trace.duration_s == pytest.approx(1800.0)

    def test_family_keeps_reference_prefix_structure(self):
        """The opening bursts match the reference trace's shape."""
        family = generate_ms_family_trace(17 * 60.0)
        reference = default_ms_trace()
        # Compare the pre-central window (before 480 s).
        assert np.allclose(
            family.samples[:450], reference.samples[:450], atol=0.02
        )

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            generate_ms_family_trace(0.0)
