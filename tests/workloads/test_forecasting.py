"""Tests for the online forecasting module."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workloads.forecasting import (
    BurstDurationEstimator,
    EwmaForecaster,
    HoltForecaster,
    OnlineBurstForecaster,
)


class TestEwmaForecaster:
    def test_first_observation_sets_level(self):
        f = EwmaForecaster()
        f.observe(2.0)
        assert f.forecast() == pytest.approx(2.0)

    def test_converges_to_constant_signal(self):
        f = EwmaForecaster(alpha=0.3)
        for _ in range(100):
            f.observe(1.7)
        assert f.forecast() == pytest.approx(1.7)

    def test_tracks_level_changes(self):
        f = EwmaForecaster(alpha=0.5)
        for _ in range(20):
            f.observe(1.0)
        f.observe(3.0)
        assert 1.0 < f.forecast() < 3.0

    def test_forecast_before_data_is_zero(self):
        assert EwmaForecaster().forecast() == 0.0

    def test_reset(self):
        f = EwmaForecaster()
        f.observe(5.0)
        f.reset()
        assert f.forecast() == 0.0

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaForecaster(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaForecaster(alpha=1.5)

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=40)
    def test_forecast_within_observed_range(self, values):
        f = EwmaForecaster(alpha=0.4)
        for v in values:
            f.observe(v)
        assert min(values) - 1e-9 <= f.forecast() <= max(values) + 1e-9


class TestHoltForecaster:
    def test_captures_a_ramp(self):
        """On a linear ramp the trend estimate turns positive and the
        multi-step forecast leads the signal."""
        f = HoltForecaster(alpha=0.5, beta=0.3)
        for t in range(50):
            f.observe(1.0 + 0.05 * t)
        assert f.trend > 0.0
        assert f.forecast(horizon_steps=10) > f.forecast(horizon_steps=0)

    def test_flat_signal_has_no_trend(self):
        f = HoltForecaster()
        for _ in range(100):
            f.observe(2.0)
        assert f.trend == pytest.approx(0.0, abs=1e-6)
        assert f.forecast(5) == pytest.approx(2.0, abs=1e-3)

    def test_forecast_floored_at_zero(self):
        f = HoltForecaster(alpha=0.9, beta=0.9)
        f.observe(5.0)
        f.observe(0.0)
        assert f.forecast(horizon_steps=100) >= 0.0

    def test_negative_horizon_rejected(self):
        f = HoltForecaster()
        f.observe(1.0)
        with pytest.raises(ConfigurationError):
            f.forecast(horizon_steps=-1)

    def test_reset(self):
        f = HoltForecaster()
        f.observe(1.0)
        f.observe(2.0)
        f.reset()
        assert f.forecast() == 0.0
        assert f.trend == 0.0


class TestBurstDurationEstimator:
    def test_prior_before_any_history(self):
        est = BurstDurationEstimator(prior_duration_s=600.0)
        assert est.predict_total_duration_s() == pytest.approx(600.0)

    def test_learns_from_completed_bursts(self):
        est = BurstDurationEstimator(prior_duration_s=600.0)
        for d in (300.0, 320.0, 280.0):
            est.record_completed_burst(d)
        assert est.historical_mean_s == pytest.approx(300.0)
        assert est.predict_total_duration_s() == pytest.approx(300.0)

    def test_hazard_floor_stretches_with_elapsed_time(self):
        """A burst that outlives the history stretches the estimate."""
        est = BurstDurationEstimator(hazard_factor=1.3)
        est.record_completed_burst(100.0)
        assert est.predict_total_duration_s(elapsed_s=50.0) == pytest.approx(100.0)
        assert est.predict_total_duration_s(elapsed_s=200.0) == pytest.approx(260.0)

    def test_history_window_slides(self):
        est = BurstDurationEstimator(history_size=2)
        for d in (100.0, 200.0, 300.0):
            est.record_completed_burst(d)
        assert est.historical_mean_s == pytest.approx(250.0)

    def test_reset(self):
        est = BurstDurationEstimator(prior_duration_s=500.0)
        est.record_completed_burst(100.0)
        est.reset()
        assert est.historical_mean_s == pytest.approx(500.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstDurationEstimator(prior_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            BurstDurationEstimator(hazard_factor=0.9)
        with pytest.raises(ConfigurationError):
            BurstDurationEstimator(history_size=0)

    @given(
        durations=st.lists(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
            max_size=40,
        ),
        history_size=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_snapshot_restore_round_trip(self, durations, history_size):
        """snapshot_history/restore_history round-trips bit-for-bit and
        the restored window keeps sliding with the same semantics."""
        est = BurstDurationEstimator(history_size=history_size)
        for d in durations:
            est.record_completed_burst(d)
        snap = est.snapshot_history()
        assert snap == tuple(durations[-history_size:])

        other = BurstDurationEstimator(history_size=history_size)
        other.restore_history(snap)
        assert other.snapshot_history() == snap
        assert other.historical_mean_s == est.historical_mean_s

        # The window must keep evicting oldest-first after a restore.
        est.record_completed_burst(7.25)
        other.record_completed_burst(7.25)
        assert other.snapshot_history() == est.snapshot_history()
        assert len(other.snapshot_history()) <= history_size


class TestOnlineBurstForecaster:
    def test_records_completed_bursts(self):
        fc = OnlineBurstForecaster()
        fc.detector.hold_off_s = 5.0
        # One 30-second burst, then quiet long enough to close it.
        t = 0.0
        for _ in range(30):
            fc.observe(2.0, t)
            t += 1.0
        for _ in range(20):
            fc.observe(0.5, t)
            t += 1.0
        # The recorded duration includes the detector's hold-off tail
        # (the episode only closes once demand has stayed low that long).
        assert fc.estimator.historical_mean_s == pytest.approx(
            30.0 + fc.detector.hold_off_s, abs=2.0
        )

    def test_prediction_stretches_during_long_burst(self):
        fc = OnlineBurstForecaster()
        fc.estimator.record_completed_burst(60.0)
        t = 0.0
        for _ in range(200):
            fc.observe(2.0, t)
            t += 1.0
        assert fc.predicted_burst_duration_s(t) > 200.0

    def test_single_sample_burst_recorded_with_one_interval_floor(self):
        """A burst that starts and ends within one sample still teaches
        the estimator: it is recorded at the one-sample-period floor
        instead of being silently dropped."""
        fc = OnlineBurstForecaster()
        fc.detector.hold_off_s = 0.0
        assert fc.observe(2.0, 0.0)
        assert not fc.observe(0.5, 1.0)
        assert fc.estimator.snapshot_history() == (1.0,)

    def test_single_sample_burst_floor_follows_sample_period(self):
        fc = OnlineBurstForecaster()
        fc.detector.hold_off_s = 0.0
        fc.observe(0.5, 0.0)
        fc.observe(2.0, 0.3)
        fc.observe(0.5, 0.6)
        assert fc.estimator.snapshot_history() == pytest.approx((0.3,))

    def test_reset(self):
        fc = OnlineBurstForecaster()
        fc.observe(2.0, 0.0)
        fc.reset()
        assert not fc.detector.in_burst
        assert fc._prev_time_s is None
