"""Tests for the Trace container and burst analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.workloads.traces import BurstInterval, Trace, find_bursts


def make_trace(values, dt=1.0):
    return Trace(np.asarray(values, dtype=float), dt, "t")


class TestTraceBasics:
    def test_length_and_duration(self):
        trace = make_trace([1.0, 2.0, 3.0], dt=2.0)
        assert len(trace) == 3
        assert trace.duration_s == pytest.approx(6.0)

    def test_at_zero_order_hold(self):
        trace = make_trace([1.0, 2.0, 3.0])
        assert trace.at(0.0) == 1.0
        assert trace.at(1.5) == 2.0
        assert trace.at(99.0) == 3.0  # clamped to the end

    def test_iteration(self):
        assert list(make_trace([1.0, 2.0])) == [1.0, 2.0]

    def test_peak_and_mean(self):
        trace = make_trace([1.0, 3.0, 2.0])
        assert trace.peak == 3.0
        assert trace.mean == pytest.approx(2.0)

    def test_times(self):
        trace = make_trace([1.0, 1.0], dt=5.0)
        assert trace.times_s().tolist() == [0.0, 5.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_trace([])
        with pytest.raises(ConfigurationError):
            make_trace([-1.0])
        with pytest.raises(ConfigurationError):
            make_trace([float("nan")])
        with pytest.raises(ConfigurationError):
            Trace(np.ones((2, 2)), 1.0)


class TestTraceStatistics:
    def test_over_capacity_time(self):
        trace = make_trace([0.5, 1.5, 2.0, 0.9, 1.1])
        assert trace.over_capacity_time_s() == pytest.approx(3.0)

    def test_over_capacity_with_custom_threshold(self):
        trace = make_trace([0.5, 1.5, 2.0])
        assert trace.over_capacity_time_s(1.6) == pytest.approx(1.0)

    def test_excess_demand_integral(self):
        trace = make_trace([0.5, 1.5, 2.0])
        assert trace.excess_demand_integral() == pytest.approx(1.5)

    def test_mean_over_capacity(self):
        trace = make_trace([0.5, 1.5, 2.5])
        assert trace.mean_over_capacity() == pytest.approx(2.0)

    def test_mean_over_capacity_no_burst(self):
        assert make_trace([0.5, 0.9]).mean_over_capacity() == 0.0


class TestTraceTransformations:
    def test_scaled(self):
        trace = make_trace([1.0, 2.0]).scaled(2.0)
        assert trace.peak == pytest.approx(4.0)

    def test_normalized_to_peak(self):
        trace = make_trace([2.0, 4.0]).normalized_to_peak()
        assert trace.peak == pytest.approx(1.0)
        assert trace.samples[0] == pytest.approx(0.5)

    def test_normalize_zero_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trace([0.0, 0.0]).normalized_to_peak()

    def test_window(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0])
        window = trace.window(1.0, 3.0)
        assert window.samples.tolist() == [2.0, 3.0]

    def test_window_validation(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            trace.window(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            trace.window(10.0, 20.0)

    def test_resampled_coarser(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0])
        coarse = trace.resampled(2.0)
        assert len(coarse) == 2
        assert coarse.samples.tolist() == [1.0, 3.0]

    def test_resampled_finer(self):
        trace = make_trace([1.0, 2.0])
        fine = trace.resampled(0.5)
        assert len(fine) == 4
        assert fine.samples.tolist() == [1.0, 1.0, 2.0, 2.0]

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=2, max_size=40
        )
    )
    @settings(max_examples=40)
    def test_window_preserves_samples(self, values):
        trace = make_trace(values)
        window = trace.window(0.0, trace.duration_s)
        assert window.samples.tolist() == trace.samples.tolist()


class TestFindBursts:
    def test_no_bursts(self):
        assert find_bursts(make_trace([0.5, 0.9, 1.0])) == []

    def test_single_burst(self):
        bursts = find_bursts(make_trace([0.5, 1.5, 2.0, 0.5]))
        assert len(bursts) == 1
        assert bursts[0].start_s == pytest.approx(1.0)
        assert bursts[0].end_s == pytest.approx(3.0)
        assert bursts[0].peak == pytest.approx(2.0)
        assert bursts[0].duration_s == pytest.approx(2.0)

    def test_burst_at_trace_end(self):
        bursts = find_bursts(make_trace([0.5, 1.5, 2.0]))
        assert len(bursts) == 1
        assert bursts[0].end_s == pytest.approx(3.0)

    def test_multiple_bursts(self):
        bursts = find_bursts(make_trace([1.5, 0.5, 1.5, 0.5, 1.5]))
        assert len(bursts) == 3

    def test_burst_durations_sum_to_over_capacity_time(self):
        trace = make_trace([0.5, 1.5, 2.0, 0.9, 1.1, 3.0, 0.2])
        total = sum(b.duration_s for b in find_bursts(trace))
        assert total == pytest.approx(trace.over_capacity_time_s())
