"""Tests for the emulated hardware testbed rig."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.testbed.hardware import (
    TESTBED_CB_RATED_W,
    TESTBED_IDLE_POWER_W,
    TESTBED_PEAK_POWER_W,
    TestbedRig,
    TestbedServer,
)


class TestTestbedServer:
    def test_paper_power_range(self):
        server = TestbedServer()
        assert server.power_w(0.0) == pytest.approx(273.0)
        assert server.power_w(1.0) == pytest.approx(428.0)

    def test_affine_in_utilisation(self):
        server = TestbedServer()
        assert server.power_w(0.5) == pytest.approx((273.0 + 428.0) / 2.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            TestbedServer(idle_power_w=500.0, peak_power_w=400.0)

    def test_invalid_utilisation(self):
        with pytest.raises(ConfigurationError):
            TestbedServer().power_w(1.5)


class TestTestbedRig:
    def test_paper_constants(self):
        assert TESTBED_CB_RATED_W == pytest.approx(232.0)
        assert TESTBED_IDLE_POWER_W == pytest.approx(273.0)
        assert TESTBED_PEAK_POWER_W == pytest.approx(428.0)

    def test_idle_power_already_overloads_breaker(self):
        """Section VII-D: the idle power (273 W) exceeds the CB capacity
        (232 W), so the sprint effectively starts at the first second."""
        assert TESTBED_IDLE_POWER_W > TESTBED_CB_RATED_W

    def test_relay_open_cb_carries_everything(self):
        rig = TestbedRig()
        step = rig.step(0.5, close_relay=False, time_s=0.0)
        assert step.cb_power_w == pytest.approx(step.server_power_w)
        assert step.ups_power_w == 0.0
        assert step.cb_overloaded

    def test_relay_closed_splits_evenly(self):
        """'The two power demands are approximately equal' (Section VI-B)."""
        rig = TestbedRig()
        step = rig.step(1.0, close_relay=True, time_s=0.0)
        assert step.ups_power_w == pytest.approx(step.server_power_w / 2.0)
        assert step.cb_power_w == pytest.approx(step.server_power_w / 2.0)

    def test_relay_closed_never_overloads_at_peak(self):
        """428/2 < 232: with the UPS sharing, the breaker is safe even at
        peak server power (Section VII-D)."""
        rig = TestbedRig()
        step = rig.step(1.0, close_relay=True, time_s=0.0)
        assert not step.cb_overloaded

    def test_relay_switch_count(self):
        rig = TestbedRig()
        rig.step(0.5, True, 0.0)
        rig.step(0.5, True, 1.0)
        rig.step(0.5, False, 2.0)
        assert rig.relay_switch_count == 2

    def test_breaker_trips_under_sustained_overload(self):
        rig = TestbedRig()
        tripped_at = None
        for t in range(300):
            step = rig.step(0.9, close_relay=False, time_s=float(t))
            if step.tripped:
                tripped_at = t
                break
        assert tripped_at is not None

    def test_trip_latches_rig_dead(self):
        rig = TestbedRig()
        for t in range(300):
            if rig.step(0.9, False, float(t)).tripped:
                break
        step = rig.step(0.1, True, 301.0)
        assert step.tripped
        assert step.server_power_w == 0.0

    def test_ups_empties_and_cb_takes_over(self):
        rig = TestbedRig()
        while not rig.ups_empty:
            rig.step(1.0, close_relay=True, time_s=0.0)
        step = rig.step(1.0, close_relay=True, time_s=1.0)
        assert step.ups_power_w == pytest.approx(0.0, abs=1e-6)
        assert step.cb_power_w == pytest.approx(step.server_power_w)

    def test_meters_record(self):
        rig = TestbedRig()
        rig.step(0.5, True, 0.0)
        assert rig.strip_meter.n_samples == 1
        assert rig.ups_meter.n_samples == 1

    def test_reset(self):
        rig = TestbedRig()
        for t in range(300):
            rig.step(0.9, False, float(t))
        rig.reset()
        assert not rig.tripped
        assert rig.ups.state_of_charge == pytest.approx(1.0)
        assert rig.relay_switch_count == 0
