"""Tests for the relay policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.testbed.hardware import TestbedRig
from repro.testbed.policy import (
    CbFirstPolicy,
    NoUpsPolicy,
    ReservedTripTimePolicy,
)


class TestReservedTripTimePolicy:
    def test_fresh_breaker_low_power_stays_open(self):
        """Plenty of margin at low power: overload the breaker."""
        rig = TestbedRig()
        policy = ReservedTripTimePolicy(30.0)
        low_power = rig.server.power_w(0.1)
        assert not policy.close_relay(rig, low_power)

    def test_high_power_closes_relay(self):
        """At peak power the remaining trip time is short: use the UPS."""
        rig = TestbedRig()
        policy = ReservedTripTimePolicy(60.0)
        peak = rig.server.power_w(1.0)
        assert rig.remaining_trip_time_s(peak) < 60.0
        assert policy.close_relay(rig, peak)

    def test_empty_ups_forces_open(self):
        rig = TestbedRig()
        while not rig.ups_empty:
            rig.step(1.0, True, 0.0)
        policy = ReservedTripTimePolicy(60.0)
        assert not policy.close_relay(rig, rig.server.power_w(1.0))

    def test_name_includes_reserve(self):
        assert ReservedTripTimePolicy(30.0).name == "reserved-30s"

    def test_invalid_reserve(self):
        with pytest.raises(ConfigurationError):
            ReservedTripTimePolicy(0.0)


class TestCbFirstPolicy:
    def test_fresh_breaker_stays_open_even_at_peak(self):
        """CB First burns the breaker budget before touching the UPS."""
        rig = TestbedRig()
        policy = CbFirstPolicy()
        peak = rig.server.power_w(1.0)
        assert not policy.close_relay(rig, peak)

    def test_switches_to_ups_when_nearly_tripped(self):
        rig = TestbedRig()
        policy = CbFirstPolicy()
        power = rig.server.power_w(0.9)
        # Burn the budget until the remaining trip time collapses.
        while rig.remaining_trip_time_s(power) > 1.5:
            rig.step(0.9, False, 0.0)
        assert policy.close_relay(rig, power)


class TestNoUpsPolicy:
    def test_never_closes(self):
        rig = TestbedRig()
        policy = NoUpsPolicy()
        assert not policy.close_relay(rig, rig.server.power_w(1.0))
