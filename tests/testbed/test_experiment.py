"""Tests for the Fig. 11 sustained-time experiment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.testbed.experiment import (
    no_ups_trip_time_s,
    run_reserve_sweep,
    run_sustained_time,
    testbed_utilization_trace,
)
from repro.testbed.policy import (
    CbFirstPolicy,
    NoUpsPolicy,
    ReservedTripTimePolicy,
)


@pytest.fixture(scope="module")
def utilization():
    return testbed_utilization_trace()


@pytest.fixture(scope="module")
def sweep(utilization):
    return run_reserve_sweep(utilization=utilization)


class TestUtilizationTrace:
    def test_values_in_unit_interval(self, utilization):
        assert (utilization.samples >= 0.0).all()
        assert (utilization.samples <= 1.0).all()

    def test_has_cheap_and_expensive_phases(self, utilization):
        """The single-server load swings between near-idle and near-peak —
        the structure the reserved-trip-time policy exploits."""
        assert (utilization.samples < 0.2).mean() > 0.1
        assert (utilization.samples > 0.6).mean() > 0.1

    def test_deterministic(self):
        a = testbed_utilization_trace()
        b = testbed_utilization_trace()
        assert a.samples.tolist() == b.samples.tolist()

    def test_too_long_rejected(self):
        with pytest.raises(ConfigurationError):
            testbed_utilization_trace(duration_s=10_000)


class TestSustainedTime:
    def test_no_ups_trips_in_about_a_minute_or_two(self, utilization):
        """The paper's reference: without the UPS the CB trips quickly
        (65 s on their rig; the same order of magnitude here)."""
        trip = no_ups_trip_time_s(utilization)
        assert 40.0 <= trip <= 180.0

    def test_ups_extends_sustained_time_severalfold(self, utilization):
        """Section VII-D: the no-UPS trip time is ~26 % of the full
        solution's sustained time (i.e. the UPS roughly quadruples it)."""
        no_ups = no_ups_trip_time_s(utilization)
        ours = run_sustained_time(
            ReservedTripTimePolicy(30.0), utilization
        ).sustained_time_s
        assert ours / no_ups > 3.0

    def test_all_policies_eventually_trip(self, utilization):
        for policy in (NoUpsPolicy(), CbFirstPolicy(), ReservedTripTimePolicy(30.0)):
            result = run_sustained_time(policy, utilization)
            assert result.tripped

    def test_result_accounting(self, utilization):
        result = run_sustained_time(ReservedTripTimePolicy(30.0), utilization)
        assert result.cb_overload_seconds > 0.0
        assert result.ups_seconds > 0.0
        assert result.overload_seconds_above(375.0) <= (
            result.cb_overload_seconds
        )


class TestReserveSweep(object):
    def test_interior_optimum(self, sweep):
        """Fig. 11b: the sustained time peaks at an intermediate reserve
        (the paper's optimum is 30 s)."""
        times = [p.ours_sustained_s for p in sweep]
        best_idx = times.index(max(times))
        assert 0 < best_idx < len(sweep) - 1
        best_reserve = sweep[best_idx].reserved_trip_time_s
        assert 10.0 <= best_reserve <= 60.0

    def test_ours_beats_cb_first_at_best_reserve(self, sweep):
        best = max(sweep, key=lambda p: p.ours_sustained_s)
        assert best.ours_sustained_s > best.cb_first_sustained_s

    def test_cb_first_constant_across_sweep(self, sweep):
        values = {p.cb_first_sustained_s for p in sweep}
        assert len(values) == 1

    def test_no_ups_is_small_fraction_of_ours(self, sweep, utilization):
        best = max(sweep, key=lambda p: p.ours_sustained_s)
        ratio = no_ups_trip_time_s(utilization) / best.ours_sustained_s
        assert 0.1 <= ratio <= 0.4  # the paper reports 26 %

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            run_reserve_sweep(())
