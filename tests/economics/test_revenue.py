"""Tests for the sprinting revenue model."""

from __future__ import annotations

import pytest

from repro.economics.revenue import (
    SprintingRevenue,
    burst_magnitude_for_utilization,
)
from repro.errors import ConfigurationError


class TestRetentionStake:
    def test_paper_monthly_stake(self):
        """$7,900/min x 43,200 min x 0.2 % = $682,560 (Section V-D)."""
        rev = SprintingRevenue()
        assert rev.monthly_retention_stake_usd == pytest.approx(682_560.0)


class TestHandlingRevenue:
    def test_paper_formula(self):
        """$7,900 x L x (M-1) x K."""
        rev = SprintingRevenue()
        assert rev.handling_revenue_usd(4.0, 5.0, 3) == pytest.approx(
            7_900.0 * 5.0 * 3.0 * 3
        )

    def test_no_burst_no_revenue(self):
        assert SprintingRevenue().handling_revenue_usd(1.0, 5.0, 3) == 0.0

    def test_zero_bursts(self):
        assert SprintingRevenue().handling_revenue_usd(3.0, 5.0, 0) == 0.0


class TestRetentionRevenue:
    def test_saturates_at_full_user_base(self):
        """min[U_0 (M-1) K, U_t]: heavy bursts expose every user."""
        rev = SprintingRevenue(users_ratio=4.0)
        # (4-1) x 3 = 9 U_0 > 4 U_0 = U_t: capped.
        assert rev.retention_revenue_usd(4.0, 3) == pytest.approx(682_560.0)

    def test_partial_exposure(self):
        rev = SprintingRevenue(users_ratio=4.0)
        # (2-1) x 2 = 2 U_0 of 4 U_0: half the stake.
        assert rev.retention_revenue_usd(2.0, 2) == pytest.approx(
            682_560.0 / 2.0
        )

    def test_larger_user_base_dilutes_retention(self):
        """Fig. 5b: with U_t = 6U_0 the same bursts touch a smaller share
        of the users, so the retention revenue shrinks."""
        small = SprintingRevenue(users_ratio=4.0)
        large = SprintingRevenue(users_ratio=6.0)
        assert large.retention_revenue_usd(2.0, 2) < (
            small.retention_revenue_usd(2.0, 2)
        )


class TestTotalRevenue:
    def test_paper_r100_n4_example(self):
        """R100 at N=4, U_t=4U_0: the profit exceeds $0.4 M against the
        $468,750 cost (Section V-D / Fig. 5a)."""
        rev = SprintingRevenue(users_ratio=4.0)
        total = rev.monthly_revenue_usd(4.0, 5.0, 3)
        assert total - 468_750.0 > 400_000.0

    def test_components_sum(self):
        rev = SprintingRevenue()
        total = rev.monthly_revenue_usd(3.0, 5.0, 3)
        assert total == pytest.approx(
            rev.handling_revenue_usd(3.0, 5.0, 3)
            + rev.retention_revenue_usd(3.0, 3)
        )


class TestBurstMagnitude:
    def test_full_utilisation(self):
        """R100: the burst magnitude reaches the maximum degree."""
        assert burst_magnitude_for_utilization(4.0, 1.0) == pytest.approx(4.0)

    def test_half_utilisation(self):
        """R50: M = 1 + 0.5 x (N-1)."""
        assert burst_magnitude_for_utilization(4.0, 0.5) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            burst_magnitude_for_utilization(4.0, 1.5)
        with pytest.raises(ConfigurationError):
            burst_magnitude_for_utilization(0.5, 0.5)
