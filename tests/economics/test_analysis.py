"""Tests for the Fig. 5 analysis and the Section V-D trace example."""

from __future__ import annotations

import pytest

from repro.economics.analysis import (
    EconomicsPoint,
    fig5_analysis,
    monthly_revenue_for_trace,
)
from repro.errors import ConfigurationError
from repro.workloads.ms_trace import default_ms_trace


class TestFig5Analysis:
    @pytest.fixture(scope="class")
    def fig5a(self):
        return fig5_analysis(users_ratio=4.0)

    @pytest.fixture(scope="class")
    def fig5b(self):
        return fig5_analysis(users_ratio=6.0)

    def grid(self, points, utilization):
        return {
            p.max_sprinting_degree: p
            for p in points
            if p.utilization_fraction == utilization
        }

    def test_grid_size(self, fig5a):
        assert len(fig5a) == 6 * 3

    def test_r100_profitable_at_every_degree(self, fig5a):
        """Fig. 5a: bursts that fully utilise the extra cores make more
        than $0.4 M/month of profit at high degrees."""
        r100 = self.grid(fig5a, 1.0)
        assert all(p.profit_usd > 0 for p in r100.values())
        assert r100[4.0].profit_usd > 400_000.0

    def test_r50_profit_shrinks_at_high_degrees(self, fig5a):
        """Fig. 5a: low bursts leave extra cores idle — once the retention
        component saturates, each further core costs more than it earns,
        so the R50 profit peaks before N=4 and declines after."""
        r50 = self.grid(fig5a, 0.5)
        best_n = max(r50, key=lambda n: r50[n].profit_usd)
        assert best_n < 4.0
        assert r50[4.0].profit_usd < r50[best_n].profit_usd

    def test_profit_per_cost_dollar_declines_with_degree(self, fig5a):
        """Every extra dark core is less profitable than the last."""
        r50 = self.grid(fig5a, 0.5)
        degrees = sorted(n for n in r50 if n > 1.0)
        ratios = [r50[n].profit_usd / r50[n].cost_usd for n in degrees]
        assert ratios == sorted(ratios, reverse=True)

    def test_cost_grows_linearly_with_degree(self, fig5a):
        r100 = self.grid(fig5a, 1.0)
        assert r100[4.0].cost_usd == pytest.approx(3.0 * r100[2.0].cost_usd)

    def test_more_users_reduces_retention_component(self, fig5a, fig5b):
        """Fig. 5b: with U_t = 6U_0 the revenue per point is at most the
        Fig. 5a value."""
        a100 = self.grid(fig5a, 1.0)
        b100 = self.grid(fig5b, 1.0)
        for n in a100:
            assert b100[n].revenue_usd <= a100[n].revenue_usd + 1e-9

    def test_invalid_grids(self):
        with pytest.raises(ConfigurationError):
            fig5_analysis(degrees=())


class TestTraceRevenueExample:
    def test_paper_19_million_example(self):
        """Section V-D: the Fig. 1 workload with N=4, U_t=4U_0 earns on
        the order of $19 M a month."""
        revenue = monthly_revenue_for_trace(default_ms_trace())
        assert 14e6 < revenue < 24e6

    def test_far_exceeds_core_cost(self):
        """'...while the monthly cost of additional cores is only $0.47M.'"""
        revenue = monthly_revenue_for_trace(default_ms_trace())
        assert revenue > 30 * 468_750.0

    def test_higher_degree_recovers_more(self):
        low = monthly_revenue_for_trace(default_ms_trace(), max_sprinting_degree=2.0)
        high = monthly_revenue_for_trace(default_ms_trace(), max_sprinting_degree=4.0)
        assert high > low
