"""Tests for the dark-core provisioning cost model."""

from __future__ import annotations

import pytest

from repro.economics.cost import CoreProvisioningCost
from repro.errors import ConfigurationError


class TestCoreProvisioningCost:
    def test_paper_per_server_formula(self):
        """$40 x 10(N-1)/48 = $8.3(N-1) per server per month."""
        cost = CoreProvisioningCost()
        assert cost.monthly_cost_per_server_usd(2.0) == pytest.approx(
            40.0 * 10.0 / 48.0
        )
        assert cost.monthly_cost_per_server_usd(2.0) == pytest.approx(
            8.33, abs=0.01
        )

    def test_paper_per_datacenter_formula(self):
        """$8.3(N-1) x 18,750 servers = $156,250(N-1)."""
        cost = CoreProvisioningCost()
        assert cost.monthly_cost_usd(2.0) == pytest.approx(156_250.0)
        assert cost.monthly_cost_usd(4.0) == pytest.approx(468_750.0)

    def test_no_extra_cores_no_cost(self):
        assert CoreProvisioningCost().monthly_cost_usd(1.0) == 0.0

    def test_additional_cores_per_server(self):
        cost = CoreProvisioningCost()
        assert cost.additional_cores_per_server(4.0) == pytest.approx(30.0)

    def test_degree_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreProvisioningCost().monthly_cost_usd(0.5)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CoreProvisioningCost(core_cost_usd=0.0)
        with pytest.raises(ConfigurationError):
            CoreProvisioningCost(amortization_months=0)
        with pytest.raises(ConfigurationError):
            CoreProvisioningCost(n_servers=0)
