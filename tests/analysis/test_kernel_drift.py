"""The kernel-drift checker: clean on the real tree, sensitive to tampering.

The first test doubles as the tier-1 guard of the kernel/reference
contract: any change that makes ``StepKernel`` read different substrate
attributes, build a different ``ControlStep``, or fold an alien constant
fails the local test run, not just CI.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.framework import SourceFile, collect_files, load_source
from repro.analysis.kernel_drift import KernelDriftRule

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def real_sources():
    return [load_source(p, root=SRC) for p in collect_files([SRC])]


def tampered(sources, old, new):
    """The real source list with one substitution applied to kernel.py."""
    out = []
    for source in sources:
        if source.path.name == "kernel.py" and "core" in source.path.parts:
            assert old in source.text, f"fixture drifted: {old!r} not found"
            text = source.text.replace(old, new)
            out.append(
                SourceFile(
                    path=source.path,
                    display_path=source.display_path,
                    text=text,
                    tree=ast.parse(text),
                    suppressions=source.suppressions,
                )
            )
        else:
            out.append(source)
    return out


class TestRealTree:
    def test_kernel_matches_reference(self, real_sources):
        findings = KernelDriftRule().check_project(real_sources)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_rule_skips_trees_without_the_contract(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        source = load_source(target, root=tmp_path)
        assert KernelDriftRule().check_project([source]) == []


class TestTamperSensitivity:
    def test_deleting_a_hoisted_read_is_detected(self, real_sources):
        sources = tampered(
            real_sources,
            "self._room_hc = room.heat_capacity_j_per_k",
            "self._room_hc = 1.0",
        )
        findings = KernelDriftRule().check_project(sources)
        assert any("heat_capacity_j_per_k" in f.message for f in findings)

    def test_deleting_a_live_substrate_read_is_detected(self, real_sources):
        # hold_off_s is read live every step (it may be reconfigured
        # mid-run); folding it breaks the contract and must be caught.
        sources = tampered(
            real_sources,
            ">= detector.hold_off_s",
            ">= 17.31",
        )
        findings = KernelDriftRule().check_project(sources)
        assert any("hold_off_s" in f.message for f in findings)

    def test_dropping_a_controlstep_field_is_detected(self, real_sources):
        sources = tampered(
            real_sources, "tes_heat_w=heat_via_tes,", ""
        )
        findings = KernelDriftRule().check_project(sources)
        assert any(
            "tes_heat_w" in f.message and "ControlStep" in f.message
            for f in findings
        )

    def test_folding_an_alien_constant_is_detected(self, real_sources):
        sources = tampered(
            real_sources,
            "self._core_power_w = chip.core_power_w",
            "self._core_power_w = 2.4971",
        )
        findings = KernelDriftRule().check_project(sources)
        assert any("2.4971" in f.message for f in findings)

    def test_hidden_cycle_cache_field_is_detected(self, real_sources):
        # The steady-cycle detector must derive eligibility from the
        # declared signature alone; stashing extra state on the
        # controller (a hidden cycle cache) is exactly the drift the
        # ALLOWED_KERNEL_ONLY ledger exists to surface.
        sources = tampered(
            real_sources,
            "sig = self._quiescent_sig(ctrl)",
            "sig = (ctrl._degraded_capacity, self._quiescent_sig(ctrl))",
        )
        findings = KernelDriftRule().check_project(sources)
        assert any(
            "_degraded_capacity" in f.message
            and "reference step never does" in f.message
            for f in findings
        )

    def test_folding_the_trace_period_is_detected(self, real_sources):
        # The span engine's bulk timestamps must come from the trace's
        # own dt_s, not a folded constant.
        sources = tampered(
            real_sources,
            "trace_dt = trace.dt_s",
            "trace_dt = 0.9973",
        )
        findings = KernelDriftRule().check_project(sources)
        assert any("0.9973" in f.message for f in findings)

    def test_kernel_only_read_is_detected(self, real_sources):
        # Make the kernel consult a substrate attribute (TesTank.capacity_j)
        # that the reference step closure never reads.
        sources = tampered(
            real_sources,
            "avail = 0.0 if energy <= 1e-9 else tes.max_discharge_w",
            "avail = 0.0 if energy <= 1e-9 else min(tes.max_discharge_w,"
            " tes.capacity_j)",
        )
        findings = KernelDriftRule().check_project(sources)
        assert any(
            "TesTank.capacity_j" in f.message
            and "reference step never does" in f.message
            for f in findings
        )
