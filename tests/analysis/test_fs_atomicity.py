"""The fs-atomicity checker: clean on the real tree, tamper-sensitive.

The first test doubles as the tier-1 guard of the shared-directory I/O
discipline: a bare ``open(path, "w")`` in the artifact store, a torn
multi-write manifest append, or a work-queue read that bypasses the
lease claim fails the local test run, not just CI.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.framework import SourceFile, collect_files, load_source
from repro.analysis.fs_atomicity import FsAtomicityRule

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def real_sources():
    return [load_source(p, root=SRC) for p in collect_files([SRC])]


def run_rule(sources):
    rule = FsAtomicityRule()
    findings = []
    for source in sources:
        findings.extend(rule.check_file(source))
    return findings


def tampered(sources, filename, old, new):
    """The real source list with one substitution applied to ``filename``."""
    out = []
    hit = False
    for source in sources:
        if source.path.name == filename and "simulation" in source.path.parts:
            assert old in source.text, f"fixture drifted: {old!r} not found"
            hit = True
            text = source.text.replace(old, new)
            out.append(
                SourceFile(
                    path=source.path,
                    display_path=source.display_path,
                    text=text,
                    tree=ast.parse(text),
                    suppressions=source.suppressions,
                )
            )
        else:
            out.append(source)
    assert hit, f"fixture drifted: no simulation/{filename} in the tree"
    return out


class TestRealTree:
    def test_store_and_workqueue_are_clean(self, real_sources):
        findings = run_rule(real_sources)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_rule_ignores_other_modules(self, tmp_path):
        # Plain file I/O outside the shared-directory modules is fine.
        target = tmp_path / "mod.py"
        target.write_text(
            "def save(path, data):\n"
            '    with open(path, "w") as handle:\n'
            "        handle.write(data)\n"
        )
        source = load_source(target, root=tmp_path)
        assert FsAtomicityRule().check_file(source) == []


class TestTamperSensitivity:
    def test_bare_write_in_the_store_is_detected(self, real_sources):
        # Replace the atomic publication with an in-place truncate.
        sources = tampered(
            real_sources,
            "store.py",
            "with os.fdopen(fd, \"w\", encoding=\"utf-8\") as handle:\n"
            "                    json.dump(payload, handle, sort_keys=True)\n"
            "                os.replace(tmp_name, path)",
            "with open(path, \"w\", encoding=\"utf-8\") as handle:\n"
            "                    json.dump(payload, handle, sort_keys=True)",
        )
        findings = run_rule(sources)
        assert any(
            "bare open() for writing" in f.message for f in findings
        )

    def test_write_text_in_the_store_is_detected(self, real_sources):
        sources = tampered(
            real_sources,
            "store.py",
            "os.replace(tmp_name, path)",
            "path.write_text(json.dumps(payload))",
        )
        findings = run_rule(sources)
        assert any("write_text" in f.message for f in findings)

    def test_multi_write_append_is_detected(self, real_sources):
        # A second write() in the manifest append can interleave with a
        # concurrent appender's line.
        sources = tampered(
            real_sources,
            "store.py",
            "handle.write(line)",
            'handle.write(line)\n                handle.write("\\n")',
        )
        findings = run_rule(sources)
        assert any(
            "append-mode open with multiple writes" in f.message
            for f in findings
        )

    def test_unclaimed_task_read_is_detected(self, real_sources):
        # Read the task file still sitting in tasks_dir instead of the
        # claimed lease path: races the worker that wins the claim.
        sources = tampered(
            real_sources,
            "workqueue.py",
            "payload = queue._read_json(lease_path)",
            "payload = queue._read_json("
            "queue.tasks_dir / lease_path.name)",
        )
        findings = run_rule(sources)
        assert any(
            "without holding its lease" in f.message for f in findings
        )
