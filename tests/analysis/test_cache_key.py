"""The cache-key-coverage checker: clean on the real tree, tamper-sensitive.

The first test doubles as the tier-1 guard of the sweep-cache contract:
dropping a ``StrategySpec``/``DataCenterConfig``/``FaultPlan`` field from
the SHA-256 key, or reshaping the key without bumping
``CACHE_FORMAT_VERSION``, fails the local test run, not just CI.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.cache_key import CacheKeyCoverageRule
from repro.analysis.framework import SourceFile, collect_files, load_source

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def real_sources():
    return [load_source(p, root=SRC) for p in collect_files([SRC])]


def tampered(sources, old, new):
    """The real source list with one substitution applied to batch.py."""
    out = []
    for source in sources:
        if source.path.name == "batch.py":
            assert old in source.text, f"fixture drifted: {old!r} not found"
            text = source.text.replace(old, new)
            out.append(
                SourceFile(
                    path=source.path,
                    display_path=source.display_path,
                    text=text,
                    tree=ast.parse(text),
                    suppressions=source.suppressions,
                )
            )
        else:
            out.append(source)
    return out


class TestRealTree:
    def test_every_field_feeds_the_key_and_shape_is_recorded(
        self, real_sources
    ):
        findings = CacheKeyCoverageRule().check_project(real_sources)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_rule_skips_trees_without_the_sweep_engine(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        source = load_source(target, root=tmp_path)
        assert CacheKeyCoverageRule().check_project([source]) == []


class TestTamperSensitivity:
    def test_omitting_a_spec_field_is_detected(self, real_sources):
        # Two specs differing only in forecast would share one cache key.
        sources = tampered(
            real_sources, '"forecast": self.forecast,', ""
        )
        findings = CacheKeyCoverageRule().check_project(sources)
        assert any(
            "StrategySpec.forecast" in f.message
            and "never flows into" in f.message
            for f in findings
        )

    def test_omitting_a_field_also_trips_the_shape_digest(self, real_sources):
        sources = tampered(
            real_sources, '"forecast": self.forecast,', ""
        )
        findings = CacheKeyCoverageRule().check_project(sources)
        assert any(
            "without bumping CACHE_FORMAT_VERSION" in f.message
            for f in findings
        )

    def test_unrecorded_version_bump_is_detected(self, real_sources):
        sources = tampered(
            real_sources,
            "CACHE_FORMAT_VERSION = 3",
            "CACHE_FORMAT_VERSION = 4",
        )
        findings = CacheKeyCoverageRule().check_project(sources)
        assert any(
            "has no recorded key shape" in f.message for f in findings
        )

    def test_dropping_the_version_from_a_payload_is_detected(
        self, real_sources
    ):
        sources = tampered(
            real_sources,
            '"version": CACHE_FORMAT_VERSION,',
            "",
        )
        findings = CacheKeyCoverageRule().check_project(sources)
        assert any(
            "without a 'version' entry" in f.message for f in findings
        )
