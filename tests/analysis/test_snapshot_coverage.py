"""The snapshot-coverage checker: clean on the real tree, tamper-sensitive.

The first test doubles as the tier-1 guard of the fork-engine contract:
adding mutable state to any class a live run drives without threading it
through ``FacilityState.capture/restore`` (or the strategy's
``snapshot_state``) fails the local test run, not just CI.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.framework import SourceFile, collect_files, load_source
from repro.analysis.snapshot_coverage import (
    ALLOWED_UNSNAPSHOTTED,
    SnapshotCoverageRule,
)

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="module")
def real_sources():
    return [load_source(p, root=SRC) for p in collect_files([SRC])]


def tampered(sources, filename, old, new):
    """The real source list with one substitution applied to ``filename``."""
    out = []
    hit = False
    for source in sources:
        if source.path.name == filename:
            assert old in source.text, f"fixture drifted: {old!r} not found"
            hit = True
            text = source.text.replace(old, new)
            out.append(
                SourceFile(
                    path=source.path,
                    display_path=source.display_path,
                    text=text,
                    tree=ast.parse(text),
                    suppressions=source.suppressions,
                )
            )
        else:
            out.append(source)
    assert hit, f"fixture drifted: no {filename} in the tree"
    return out


class TestRealTree:
    def test_every_mutable_field_is_snapshotted(self, real_sources):
        findings = SnapshotCoverageRule().check_project(real_sources)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_rule_skips_trees_without_the_fork_engine(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        source = load_source(target, root=tmp_path)
        assert SnapshotCoverageRule().check_project([source]) == []

    def test_allowlist_reasons_are_written(self):
        for (name, attr), reason in ALLOWED_UNSNAPSHOTTED.items():
            assert reason.strip(), f"({name}, {attr}) entry has no reason"


class TestTamperSensitivity:
    def test_hidden_controller_field_is_detected(self, real_sources):
        # A new mutable attribute on the controller that capture/restore
        # never sees: forks would replay with stale hidden state.
        sources = tampered(
            real_sources,
            "controller.py",
            "self._ff_needed = math.nan",
            "self._ff_needed = math.nan\n        self._hidden_state = 1.0",
        )
        findings = SnapshotCoverageRule().check_project(sources)
        assert any(
            "SprintingController._hidden_state" in f.message
            for f in findings
        )

    def test_hidden_strategy_field_is_detected(self, real_sources):
        sources = tampered(
            real_sources,
            "strategies.py",
            "self._peak_demand = max(self._peak_demand, obs.demand)",
            "self._peak_demand = max(self._peak_demand, obs.demand)\n"
            "        self._secret = obs.demand",
        )
        findings = SnapshotCoverageRule().check_project(sources)
        assert any("._secret" in f.message for f in findings)

    def test_dropping_a_snapshot_field_is_detected(self, real_sources):
        # Rename tripped_at_s inside snapshot.py only: the breaker still
        # mutates it, but the snapshot surface no longer covers it.
        sources = tampered(
            real_sources,
            "snapshot.py",
            "tripped_at_s",
            "tripped_at_s_gone",
        )
        findings = SnapshotCoverageRule().check_project(sources)
        assert any(
            "CircuitBreaker.tripped_at_s" in f.message for f in findings
        )

    def test_stale_allowlist_entry_is_detected(self, tmp_path):
        # A mini-tree whose controller never mutates the fast-forward
        # cache: every _ff_* allowlist entry must rot loudly.
        snap = tmp_path / "repro" / "simulation" / "snapshot.py"
        ctrl = tmp_path / "repro" / "core" / "controller.py"
        snap.parent.mkdir(parents=True)
        ctrl.parent.mkdir(parents=True)
        snap.write_text("class FacilityState:\n    pass\n")
        ctrl.write_text(
            "class SprintingController:\n"
            "    def __init__(self):\n"
            "        self._ff_sig = None\n"
        )
        sources = [
            load_source(p, root=tmp_path) for p in collect_files([tmp_path])
        ]
        findings = SnapshotCoverageRule().check_project(sources)
        assert any(
            "stale allowlist entry" in f.message and "_ff_sig" in f.message
            for f in findings
        )
