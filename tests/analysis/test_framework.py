"""Tests for the repro.analysis rule engine (suppressions, output, I/O)."""

from __future__ import annotations

import ast
import json

import pytest

from repro.analysis.framework import (
    BAD_SUPPRESSION_RULE,
    PARSE_ERROR_RULE,
    Analyzer,
    Finding,
    Rule,
    collect_files,
    parse_suppressions,
)


class FlagEveryAssign(Rule):
    """Toy rule: flags every assignment statement."""

    rule_id = "toy-assign"
    description = "flags every assignment (test double)"

    def check_file(self, source):
        return [
            Finding(
                rule=self.rule_id,
                path=source.display_path,
                line=node.lineno,
                message="assignment",
            )
            for node in ast.walk(source.tree)
            if isinstance(node, ast.Assign)
        ]


def run(tmp_path, text, rules=None):
    target = tmp_path / "mod.py"
    target.write_text(text, encoding="utf-8")
    analyzer = Analyzer(rules if rules is not None else [FlagEveryAssign()])
    return analyzer.run([target], root=tmp_path)


class TestSuppressions:
    def test_finding_reported_without_directive(self, tmp_path):
        report = run(tmp_path, "x = 1\n")
        assert [f.rule for f in report.findings] == ["toy-assign"]
        assert not report.ok

    def test_same_line_directive_suppresses(self, tmp_path):
        report = run(
            tmp_path, "x = 1  # repro: allow[toy-assign] -- test fixture\n"
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0][1].reason == "test fixture"

    def test_preceding_line_directive_suppresses(self, tmp_path):
        report = run(
            tmp_path,
            "# repro: allow[toy-assign] -- on its own line\nx = 1\n",
        )
        assert report.ok

    def test_directive_for_other_rule_does_not_suppress(self, tmp_path):
        report = run(
            tmp_path, "x = 1  # repro: allow[units] -- wrong rule\n"
        )
        assert [f.rule for f in report.findings] == ["toy-assign"]

    def test_reasonless_directive_is_flagged_and_ignored(self, tmp_path):
        report = run(tmp_path, "x = 1  # repro: allow[toy-assign]\n")
        rules = sorted(f.rule for f in report.findings)
        assert rules == [BAD_SUPPRESSION_RULE, "toy-assign"]

    def test_parse_suppressions_grammar(self):
        directives = parse_suppressions(
            "a = 1\n"
            "b = 2  # repro: allow[kernel-drift] -- because physics\n"
        )
        assert list(directives) == [2]
        (directive,) = directives[2]
        assert directive.rule == "kernel-drift"
        assert directive.reason == "because physics"


class TestReportOutput:
    def test_json_shape(self, tmp_path):
        report = run(tmp_path, "x = 1\n")
        payload = json.loads(report.to_json())
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["rules"] == ["toy-assign"]
        (finding,) = payload["findings"]
        assert finding["rule"] == "toy-assign"
        assert finding["path"] == "mod.py"
        assert finding["line"] == 1

    def test_text_render(self, tmp_path):
        report = run(tmp_path, "x = 1\n")
        text = report.to_text()
        assert "mod.py:1: [toy-assign] assignment" in text
        assert "1 finding(s)" in text

    def test_findings_sorted_by_location(self, tmp_path):
        report = run(tmp_path, "b = 2\na = 1\n")
        assert [f.line for f in report.findings] == [1, 2]


class TestFileHandling:
    def test_parse_error_reported(self, tmp_path):
        report = run(tmp_path, "def broken(:\n")
        assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]

    def test_collect_files_skips_caches_and_dotdirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("a = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "b.py").write_text("b = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "c.py").write_text("c = 1\n")
        files = collect_files([tmp_path])
        assert [f.name for f in files] == ["a.py"]

    def test_duplicate_paths_deduplicated(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        files = collect_files([target, target, tmp_path])
        assert len(files) == 1


class TestCrossProjectRule:
    def test_check_project_sees_all_sources(self, tmp_path):
        class CountFiles(Rule):
            rule_id = "toy-count"
            description = "reports the number of files once"

            def check_project(self, sources):
                return [
                    Finding(
                        rule=self.rule_id,
                        path=sources[0].display_path,
                        line=1,
                        message=f"saw {len(sources)} files",
                    )
                ]

        (tmp_path / "a.py").write_text("a = 1\n")
        (tmp_path / "b.py").write_text("b = 1\n")
        report = Analyzer([CountFiles()]).run([tmp_path], root=tmp_path)
        (finding,) = report.findings
        assert "saw 2 files" in finding.message
