"""Fixture-driven tests for each analysis rule.

Every rule gets one known-bad snippet that must be flagged, one
known-good snippet that must pass, and a suppression check.
"""

from __future__ import annotations

import pytest

from repro.analysis.determinism import DeterminismRule
from repro.analysis.error_discipline import ErrorDisciplineRule
from repro.analysis.framework import Analyzer
from repro.analysis.units_rule import UnitsRule


def run_rule(rule, tmp_path, text, relpath="mod.py"):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return Analyzer([rule]).run([target], root=tmp_path)


class TestUnitsRule:
    def test_magic_literal_flagged(self, tmp_path):
        report = run_rule(
            UnitsRule(), tmp_path, "energy = power * 3600\n"
        )
        assert [f.rule for f in report.findings] == ["units"]
        assert "3600" in report.findings[0].message

    def test_division_by_sixty_flagged(self, tmp_path):
        report = run_rule(UnitsRule(), tmp_path, "mins = seconds / 60.0\n")
        assert len(report.findings) == 1

    def test_cross_unit_addition_flagged(self, tmp_path):
        report = run_rule(
            UnitsRule(), tmp_path, "total = energy_j + reserve_wh\n"
        )
        assert len(report.findings) == 1
        assert "_j" in report.findings[0].message
        assert "_wh" in report.findings[0].message

    def test_cross_unit_comparison_flagged(self, tmp_path):
        report = run_rule(
            UnitsRule(), tmp_path, "if power_w > budget_j:\n    pass\n"
        )
        assert len(report.findings) == 1

    def test_good_code_passes(self, tmp_path):
        report = run_rule(
            UnitsRule(),
            tmp_path,
            "from repro.units import SECONDS_PER_HOUR\n"
            "energy_j = power_w * dt_s\n"  # multiplication converts units
            "wh = energy_j / SECONDS_PER_HOUR\n"
            "total_j = energy_j + other_j\n",
        )
        assert report.ok

    def test_units_module_itself_is_exempt(self, tmp_path):
        report = run_rule(
            UnitsRule(), tmp_path, "S = 60 * 60\n", relpath="units.py"
        )
        assert report.ok

    def test_suppression_honored(self, tmp_path):
        report = run_rule(
            UnitsRule(),
            tmp_path,
            "x = y * 3600  # repro: allow[units] -- fixture\n",
        )
        assert report.ok
        assert len(report.suppressed) == 1


HOT = "repro/core/kernel.py"
COLD = "repro/tools/helper.py"


class TestDeterminismRule:
    def test_wall_clock_flagged_in_hot_path(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import time\nnow = time.time()\n",
            relpath=HOT,
        )
        assert [f.rule for f in report.findings] == ["determinism"]

    def test_random_module_flagged_in_hot_path(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import random\nx = random.random()\n",
            relpath=HOT,
        )
        assert len(report.findings) >= 1

    def test_set_iteration_flagged_in_hot_path(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "for item in {1.0, 2.0}:\n    total = item\n",
            relpath=HOT,
        )
        assert len(report.findings) == 1
        assert "set" in report.findings[0].message

    def test_math_numpy_mixing_flagged_in_hot_path(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import math\nimport numpy as np\n"
            "a = math.sqrt(2.0)\nb = np.sqrt(2.0)\n",
            relpath=HOT,
        )
        assert len(report.findings) == 1
        assert "sqrt" in report.findings[0].message

    def test_rollout_module_is_a_hot_path(self, tmp_path):
        """The MPC rollout planner carries the same bit-for-bit contract
        as the kernel: wall clocks inside it must be flagged."""
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import time\nstarted = time.monotonic()\n",
            relpath="repro/simulation/rollout.py",
        )
        assert [f.rule for f in report.findings] == ["determinism"]

    @pytest.mark.parametrize(
        "relpath",
        (
            "repro/simulation/scheduler.py",
            "repro/simulation/packing.py",
        ),
    )
    def test_sweep_dispatch_modules_are_hot_paths(self, tmp_path, relpath):
        """Scheduling and packing decide where work runs, never what it
        computes — a wall clock inside either must be flagged.  (The
        work-queue module needs clocks for leases and deliberately stays
        off the hot list.)"""
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import time\nstarted = time.monotonic()\n",
            relpath=relpath,
        )
        assert [f.rule for f in report.findings] == ["determinism"]

    def test_cold_path_is_exempt(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import time\nimport random\nnow = time.time()\n"
            "x = random.random()\nfor i in {1, 2}:\n    pass\n",
            relpath=COLD,
        )
        assert report.ok

    def test_clean_hot_path_passes(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import math\n"
            "def f(x):\n"
            "    for v in sorted({1.0, 2.0}):\n"
            "        x += math.exp(v)\n"
            "    return x\n",
            relpath=HOT,
        )
        assert report.ok

    def test_suppression_honored(self, tmp_path):
        report = run_rule(
            DeterminismRule(),
            tmp_path,
            "import time\n"
            "now = time.time()  # repro: allow[determinism] -- fixture\n",
            relpath=HOT,
        )
        assert report.ok


class TestErrorDisciplineRule:
    def test_bare_except_pass_flagged(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\nexcept:\n    pass\n",
        )
        assert [f.rule for f in report.findings] == ["error-discipline"]

    def test_broad_except_swallow_flagged(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\nexcept Exception:\n    result = None\n",
        )
        assert len(report.findings) == 1

    def test_broad_except_in_tuple_flagged(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\nexcept (ValueError, Exception):\n    pass\n",
        )
        assert len(report.findings) == 1

    def test_contextlib_suppress_exception_flagged(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "import contextlib\nwith contextlib.suppress(Exception):\n"
            "    work()\n",
        )
        assert len(report.findings) == 1

    def test_reraise_passes(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\nexcept Exception:\n    cleanup()\n    raise\n",
        )
        assert report.ok

    def test_logging_passes(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\nexcept Exception as exc:\n"
            "    log.warning('failed: %s', exc)\n",
        )
        assert report.ok

    def test_narrow_handler_passes(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\nexcept (OSError, ValueError):\n    pass\n",
        )
        assert report.ok

    def test_suppression_honored(self, tmp_path):
        report = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\n"
            "except Exception:\n"
            "    # repro: allow[error-discipline] -- fixture swallow\n"
            "    pass\n",
        )
        # A directive inside the handler body is too late — it must sit on
        # the 'except' line or the line directly above it.
        assert not report.ok
        report2 = run_rule(
            ErrorDisciplineRule(),
            tmp_path,
            "try:\n    work()\n"
            "# repro: allow[error-discipline] -- fixture swallow\n"
            "except Exception:\n"
            "    pass\n",
        )
        assert report2.ok
        assert len(report2.suppressed) == 1
