"""Engine upgrades: unused-suppression audit, SARIF output, incremental mode.

Fixture-level tests for the three framework features this tree's CI
depends on: stale ``# repro: allow[...]`` directives become findings,
``--format sarif`` emits a code-scanning-compatible document, and
``--changed-since`` filters *reporting* without narrowing *analysis*.
"""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.analysis.error_discipline import ErrorDisciplineRule
from repro.analysis.framework import (
    BAD_SUPPRESSION_RULE,
    UNUSED_SUPPRESSION_RULE,
    Analyzer,
    git_changed_files,
    parse_suppressions,
)

SWALLOW = (
    "def swallow():\n"
    "    try:\n"
    "        pass\n"
    "    except Exception:{comment}\n"
    "        pass\n"
)


def analyze(tmp_path, **kwargs):
    return Analyzer([ErrorDisciplineRule()]).run(
        [tmp_path], root=tmp_path, **kwargs
    )


class TestUnusedSuppressionAudit:
    def test_used_directive_is_not_flagged(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            SWALLOW.format(
                comment="  # repro: allow[error-discipline] -- fixture"
            )
        )
        report = analyze(tmp_path)
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_stale_directive_becomes_a_finding(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "# repro: allow[error-discipline] -- nothing to excuse\n"
            "x = 1\n"
        )
        report = analyze(tmp_path)
        assert [f.rule for f in report.findings] == [UNUSED_SUPPRESSION_RULE]
        assert report.findings[0].line == 1

    def test_directive_for_unselected_rule_is_left_alone(self, tmp_path):
        # Under --rule subsets a directive for an unselected rule may be
        # load-bearing; only audited rules can declare it stale.
        (tmp_path / "mod.py").write_text(
            "# repro: allow[units] -- load-bearing under the full run\n"
            "x = 1\n"
        )
        report = analyze(tmp_path)
        assert report.findings == []

    def test_the_audit_finding_is_itself_suppressible(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "# repro: allow[unused-suppression] -- kept as documentation\n"
            "# repro: allow[error-discipline] -- stale on purpose\n"
            "x = 1\n"
        )
        report = analyze(tmp_path)
        assert report.findings == []
        assert any(
            f.rule == UNUSED_SUPPRESSION_RULE for f, _ in report.suppressed
        )

    def test_reasonless_directive_stays_bad_suppression(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "# repro: allow[error-discipline]\n" "x = 1\n"
        )
        report = analyze(tmp_path)
        assert [f.rule for f in report.findings] == [BAD_SUPPRESSION_RULE]

    def test_directive_text_inside_a_docstring_is_ignored(self):
        # A rule module documenting its own suppression syntax must not
        # register a live directive (and then fail its own audit).
        text = (
            '"""Example::\n'
            "\n"
            "    # repro: allow[error-discipline] -- <why this is safe>\n"
            '"""\n'
            "x = 1\n"
        )
        assert parse_suppressions(text) == {}

    def test_real_comments_still_parse(self):
        text = "x = 1  # repro: allow[units] -- real directive\n"
        directives = parse_suppressions(text)
        assert list(directives) == [1]
        assert directives[1][0].rule == "units"
        assert directives[1][0].reason == "real directive"


class TestSarifOutput:
    def test_document_shape(self, tmp_path):
        (tmp_path / "bad.py").write_text(SWALLOW.format(comment=""))
        (tmp_path / "ok.py").write_text(
            SWALLOW.format(
                comment="  # repro: allow[error-discipline] -- fixture"
            )
        )
        report = analyze(tmp_path)
        document = json.loads(report.to_sarif())
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "error-discipline" in rule_ids

        results = run["results"]
        assert len(results) == 2  # one kept + one suppressed
        kept = [r for r in results if "suppressions" not in r]
        suppressed = [r for r in results if "suppressions" in r]
        assert len(kept) == len(suppressed) == 1
        location = kept[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "bad.py"
        assert location["region"]["startLine"] >= 1
        assert (
            suppressed[0]["suppressions"][0]["justification"] == "fixture"
        )
        assert suppressed[0]["suppressions"][0]["kind"] == "inSource"

    def test_zero_findings_is_valid_sarif(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        document = json.loads(analyze(tmp_path).to_sarif())
        assert document["runs"][0]["results"] == []


class TestIncrementalMode:
    def test_only_changed_files_are_reported(self, tmp_path):
        (tmp_path / "touched.py").write_text(SWALLOW.format(comment=""))
        (tmp_path / "untouched.py").write_text(SWALLOW.format(comment=""))
        report = analyze(
            tmp_path, changed_only=[tmp_path / "touched.py"]
        )
        assert [f.path for f in report.findings] == ["touched.py"]
        # Analysis still covered the whole tree.
        assert report.files_scanned == 2

    def test_empty_changed_set_reports_nothing(self, tmp_path):
        (tmp_path / "mod.py").write_text(SWALLOW.format(comment=""))
        report = analyze(tmp_path, changed_only=[])
        assert report.findings == []
        assert report.files_scanned == 1


class TestGitChangedFiles:
    @pytest.fixture()
    def repo(self, tmp_path):
        def git(*args):
            subprocess.run(
                ["git", "-C", str(tmp_path), *args],
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "test@example.invalid")
        git("config", "user.name", "test")
        (tmp_path / "tracked.py").write_text("x = 1\n")
        git("add", "tracked.py")
        git("commit", "-q", "-m", "seed")
        return tmp_path

    def test_tracked_and_untracked_changes_are_listed(self, repo):
        (repo / "tracked.py").write_text("x = 2\n")
        (repo / "fresh.py").write_text("y = 1\n")
        changed = git_changed_files("HEAD", cwd=repo)
        names = {p.name for p in changed}
        assert names == {"tracked.py", "fresh.py"}
        assert all(p.is_absolute() for p in changed)

    def test_clean_tree_yields_nothing(self, repo):
        assert git_changed_files("HEAD", cwd=repo) == []

    def test_unknown_revision_raises_value_error(self, repo):
        with pytest.raises(ValueError):
            git_changed_files("no-such-rev", cwd=repo)
