"""Smoke tests: every example script runs cleanly end to end.

The examples are the library's front door; a refactor that breaks one must
fail the suite.  Each is executed in-process via ``runpy`` with stdout
captured (the heavyweight table-building examples run a trimmed scenario
where they expose knobs; otherwise they run as shipped).
"""

from __future__ import annotations

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Examples fast enough to run as shipped on every test invocation.
FAST_EXAMPLES = (
    "quickstart.py",
    "ms_burst_response.py",
    "testbed_replay.py",
    "economics_analysis.py",
    "outage_response.py",
    "skewed_burst.py",
    "visual_run.py",
    "renewable_constrained.py",
)

#: Heavier examples (they build Oracle tables / sizing grids); still run,
#: once each, because a broken front door is worse than a slow suite.
SLOW_EXAMPLES = (
    "strategy_comparison.py",
    "online_prediction.py",
    "capacity_planning.py",
)


def run_example(name: str) -> str:
    """Execute one example as ``__main__``; returns its stdout."""
    path = EXAMPLES_DIR / name
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(path), run_name="__main__")
    return buffer.getvalue()


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


def test_every_example_is_covered():
    """A new example must be added to one of the lists above."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
    assert on_disk == covered, on_disk ^ covered
