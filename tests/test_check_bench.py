"""Unit tests for the benchmark regression gate (benchmarks/check_bench.py).

The checker is a standalone script (it must run without the package on
``sys.path``), so these tests drive it through its ``main`` entry point
with synthetic pytest-benchmark JSON files.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    Path(__file__).parent.parent / "benchmarks" / "check_bench.py",
)
assert _SPEC is not None and _SPEC.loader is not None
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def write_results(path: Path, ops_by_name: dict) -> Path:
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"ops": ops, "mean": 1.0 / ops}}
            for name, ops in ops_by_name.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture()
def baseline(tmp_path):
    return write_results(
        tmp_path / "baseline.json",
        {"bench_full_ms_run": 15.0, "bench_oracle_search": 3.0},
    )


def run(fresh, baseline, *extra):
    return check_bench.main([str(fresh), "--baseline", str(baseline), *extra])


class TestAbsoluteComparison:
    def test_identical_results_pass(self, tmp_path, baseline):
        fresh = write_results(
            tmp_path / "f.json",
            {"bench_full_ms_run": 15.0, "bench_oracle_search": 3.0},
        )
        assert run(fresh, baseline) == 0

    def test_small_slowdown_within_tolerance_passes(self, tmp_path, baseline):
        fresh = write_results(
            tmp_path / "f.json",
            {"bench_full_ms_run": 12.0, "bench_oracle_search": 2.4},
        )
        assert run(fresh, baseline) == 0  # 20% drop < 25% tolerance

    def test_regression_beyond_tolerance_fails(self, tmp_path, baseline):
        fresh = write_results(
            tmp_path / "f.json",
            {"bench_full_ms_run": 15.0, "bench_oracle_search": 2.0},
        )
        assert run(fresh, baseline) == 1  # 33% drop > 25% tolerance

    def test_tolerance_is_configurable(self, tmp_path, baseline):
        fresh = write_results(
            tmp_path / "f.json",
            {"bench_full_ms_run": 12.0, "bench_oracle_search": 3.0},
        )
        assert run(fresh, baseline, "--tolerance", "0.1") == 1

    def test_new_benchmark_without_baseline_passes(self, tmp_path, baseline):
        fresh = write_results(
            tmp_path / "f.json",
            {
                "bench_full_ms_run": 15.0,
                "bench_oracle_search": 3.0,
                "bench_brand_new": 1.0,
            },
        )
        assert run(fresh, baseline) == 0


class TestRelativeComparison:
    def test_uniform_machine_slowdown_passes(self, tmp_path, baseline):
        """Half-speed machine, same shape: the anchor normalisation must
        not flag it."""
        fresh = write_results(
            tmp_path / "f.json",
            {"bench_full_ms_run": 7.5, "bench_oracle_search": 1.5},
        )
        assert run(fresh, baseline) == 1  # absolute comparison trips...
        assert (
            run(fresh, baseline, "--relative-to", "bench_full_ms_run") == 0
        )  # ...relative does not

    def test_shape_regression_still_fails(self, tmp_path, baseline):
        """One benchmark slowing down relative to the anchor is a real
        regression even on a slower machine."""
        fresh = write_results(
            tmp_path / "f.json",
            {"bench_full_ms_run": 7.5, "bench_oracle_search": 1.0},
        )
        assert (
            run(fresh, baseline, "--relative-to", "bench_full_ms_run") == 1
        )

    def test_missing_anchor_is_an_error(self, tmp_path, baseline):
        fresh = write_results(tmp_path / "f.json", {"bench_oracle_search": 3.0})
        assert run(fresh, baseline, "--relative-to", "bench_full_ms_run") == 1


class TestInputValidation:
    def test_missing_file_is_an_error(self, tmp_path, baseline):
        assert run(tmp_path / "nope.json", baseline) == 2

    def test_bad_tolerance_is_an_error(self, tmp_path, baseline):
        fresh = write_results(tmp_path / "f.json", {"bench_full_ms_run": 15.0})
        assert run(fresh, baseline, "--tolerance", "1.5") == 2

    def test_no_shared_benchmarks_is_an_error(self, tmp_path, baseline):
        fresh = write_results(tmp_path / "f.json", {"bench_other": 1.0})
        assert run(fresh, baseline) == 1

    def test_committed_baseline_is_loadable(self):
        """The compact committed baseline parses and covers the engine
        benchmarks the Makefile gate compares."""
        ops = check_bench.load_ops(check_bench.DEFAULT_BASELINE)
        assert "bench_full_ms_run" in ops
        assert "bench_oracle_search_13_candidates" in ops
        assert "bench_upper_bound_table_cold" in ops
