"""Tests for the facility assembly."""

from __future__ import annotations

import pytest

from repro.core.strategies import GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter


class TestBuildDatacenter:
    def test_substrate_sizes_consistent(self, datacenter):
        assert datacenter.cluster.n_servers == datacenter.topology.n_servers
        assert datacenter.cluster.peak_normal_power_w == pytest.approx(
            datacenter.topology.peak_normal_it_power_w
        )

    def test_tes_built_by_default(self, datacenter):
        assert datacenter.cooling.has_tes
        assert datacenter.cooling.tes.runtime_at_load_s(
            datacenter.cluster.peak_normal_power_w
        ) == pytest.approx(12 * 60.0)

    def test_no_tes_config(self):
        dc = build_datacenter(DataCenterConfig(has_tes=False))
        assert not dc.cooling.has_tes

    def test_controller_wiring(self, datacenter):
        controller = datacenter.controller(GreedyStrategy())
        assert controller.settings.reserve_trip_time_s == pytest.approx(60.0)
        assert controller.cluster is datacenter.cluster

    def test_uncontrolled_wiring(self, datacenter):
        baseline = datacenter.uncontrolled()
        assert baseline.cluster is datacenter.cluster

    def test_reset(self, small_datacenter):
        controller = small_datacenter.controller(GreedyStrategy())
        for t in range(120):
            controller.step(2.6, float(t))
        small_datacenter.reset()
        assert small_datacenter.topology.ups_energy_j == pytest.approx(
            small_datacenter.topology.ups_capacity_j
        )

    def test_headroom_sweep_builds(self):
        for headroom in (0.0, 0.10, 0.20):
            dc = build_datacenter(
                DataCenterConfig(dc_headroom_fraction=headroom)
            )
            expected = 9.9e6 * 1.53 * (1.0 + headroom)
            assert dc.topology.dc_breaker.rated_power_w == pytest.approx(
                expected
            )

    def test_pue_sweep_builds(self):
        for pue in (1.2, 1.53, 1.8):
            dc = build_datacenter(DataCenterConfig(pue=pue))
            assert dc.cooling.chiller.cooling_overhead == pytest.approx(
                pue - 1.0
            )
