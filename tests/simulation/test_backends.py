"""Backend identity: the scheduler contract, pinned.

Every :class:`SweepScheduler` backend — and the vector-packed tier that
runs in front of the inline backends — must produce results element-wise
identical to the serial in-process reference, for successes, for cached
replays and for failures.  The parametrized tests here difference each
backend against the same reference results, so a new backend joins the
contract by joining ``BACKENDS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BreakerTrippedError, ConfigurationError
from repro.simulation.batch import (
    RunFailure,
    StrategySpec,
    SweepRunner,
    SweepTask,
)
from repro.simulation.config import DataCenterConfig
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=25)
CANDIDATES = (2.0, 2.5, 3.0, 3.5)

#: Every selectable execution path.  ``vector-packed`` is the in-process
#: backend with the packed kernel tier enabled (the default); the other
#: three run with packing off so each backend's own execution path is the
#: thing under test.
BACKENDS = ("in-process", "process-pool", "work-queue", "vector-packed")


def burst_trace(seed: int = 0, n: int = 90) -> Trace:
    rng = np.random.default_rng(seed)
    samples = 0.7 + 0.2 * rng.random(n)
    samples[30:60] += 1.8
    return Trace(samples, name=f"backend-{seed}")


def make_runner(backend: str, tmp_path, cache_dir=None) -> SweepRunner:
    if backend == "vector-packed":
        return SweepRunner(max_workers=1, cache_dir=cache_dir)
    if backend == "work-queue":
        return SweepRunner(
            max_workers=1,
            cache_dir=cache_dir,
            backend="work-queue",
            queue_dir=tmp_path / "queue",
            vector_pack=False,
        )
    if backend == "process-pool":
        return SweepRunner(
            max_workers=2,
            cache_dir=cache_dir,
            backend="process-pool",
            vector_pack=False,
        )
    return SweepRunner(
        max_workers=1,
        cache_dir=cache_dir,
        backend="in-process",
        vector_pack=False,
    )


def mixed_tasks() -> list:
    """Packable (fixed, greedy) and unpackable (MPC) tasks, mixed."""
    trace = burst_trace()
    return [
        SweepTask(trace, StrategySpec.fixed(2.0), SMALL),
        SweepTask(trace, StrategySpec.greedy(), SMALL),
        SweepTask(trace, StrategySpec.fixed(3.0), SMALL),
        SweepTask(
            trace,
            StrategySpec.mpc(candidate_bounds=CANDIDATES, horizon_s=240.0),
            SMALL,
        ),
        SweepTask(burst_trace(1), StrategySpec.fixed(2.5), SMALL),
    ]


@pytest.fixture(scope="module")
def reference_results():
    runner = SweepRunner(max_workers=1, vector_pack=False)
    return runner.run_tasks(mixed_tasks())


@pytest.fixture(scope="module")
def reference_table():
    runner = SweepRunner(max_workers=1, vector_pack=False)
    return runner.build_upper_bound_table(
        config=SMALL,
        burst_durations_min=(2.0, 4.0),
        burst_degrees=(2.8, 3.2),
        candidates=CANDIDATES,
    )


class TestBackendIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_batch_matches_reference(
        self, backend, tmp_path, reference_results
    ):
        runner = make_runner(backend, tmp_path)
        try:
            assert runner.run_tasks(mixed_tasks()) == reference_results
        finally:
            runner.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_upper_bound_table_matches_reference(
        self, backend, tmp_path, reference_table
    ):
        runner = make_runner(backend, tmp_path)
        try:
            table = runner.build_upper_bound_table(
                config=SMALL,
                burst_durations_min=(2.0, 4.0),
                burst_degrees=(2.8, 3.2),
                candidates=CANDIDATES,
            )
        finally:
            runner.close()
        assert table.entries() == reference_table.entries()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cached_failure_replays_without_execution(
        self, backend, tmp_path, monkeypatch
    ):
        """A RunFailure caches and replays on every backend.

        The failing task is a lone MPC task, so the process-pool backend
        exercises its serial fallback and the packed tier passes the task
        through — the injected failure reaches ``execute_task`` on every
        path.
        """
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise BreakerTrippedError("pdu/breaker", time_s=17.0)

        monkeypatch.setattr("repro.simulation.batch.simulate_strategy", boom)
        task = SweepTask(
            burst_trace(),
            StrategySpec.mpc(candidate_bounds=CANDIDATES),
            SMALL,
        )
        runner = make_runner(backend, tmp_path, cache_dir=tmp_path / "cache")
        try:
            first = runner.run_tasks([task])[0]
            again = runner.run_tasks([task])[0]
        finally:
            runner.close()
        assert isinstance(first, RunFailure)
        assert first.error_type == "BreakerTrippedError"
        assert again == first
        assert len(calls) == 1
        assert runner.hits == 1 and runner.misses == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stores_share_one_format(
        self, backend, tmp_path, reference_results
    ):
        """A cache written by any backend replays on the reference path."""
        cache_dir = tmp_path / "shared-cache"
        writer = make_runner(backend, tmp_path, cache_dir=cache_dir)
        try:
            first = writer.run_tasks(mixed_tasks())
        finally:
            writer.close()
        assert first == reference_results
        reader = SweepRunner(
            max_workers=1, cache_dir=cache_dir, vector_pack=False
        )
        assert reader.run_tasks(mixed_tasks()) == reference_results
        assert reader.hits == len(mixed_tasks())
        assert reader.misses == 0


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SweepRunner(max_workers=1, backend="carrier-pigeon")

    def test_work_queue_requires_queue_dir(self):
        with pytest.raises(ConfigurationError, match="queue"):
            SweepRunner(max_workers=1, backend="work-queue")

    def test_default_backend_tracks_worker_count(self):
        serial = SweepRunner(max_workers=1)
        assert serial.backend == "in-process"
        parallel = SweepRunner(max_workers=2)
        try:
            assert parallel.backend == "process-pool"
        finally:
            parallel.close()

    def test_process_pool_degrades_to_in_process_when_serial(self):
        runner = SweepRunner(max_workers=1, backend="process-pool")
        assert runner.backend == "in-process"

    def test_from_env_single_core_never_builds_a_pool(self, monkeypatch):
        """REPRO_SWEEP_WORKERS=1 (or a one-core host) must select the
        in-process backend outright — no pool spawned for no parallelism."""
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "off")
        runner = SweepRunner.from_env()
        assert runner.max_workers == 1
        assert runner.backend == "in-process"
        runner.run_tasks(mixed_tasks()[:2])
        assert runner._pool is None

    def test_from_env_multi_worker_selects_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "off")
        runner = SweepRunner.from_env()
        try:
            assert runner.backend == "process-pool"
        finally:
            runner.close()
