"""Tests for the utility-event scenarios (Section IV-A's special cases)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.power.utility import UtilityEvent, UtilityEventKind
from repro.simulation.config import DataCenterConfig
from repro.simulation.scenarios import (
    run_with_utility_events,
    spike_during_sprint_scenario,
)
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def burst_trace():
    values = [0.8] * 60 + [2.4] * 600 + [0.8] * 60
    return Trace(np.asarray(values, dtype=float), 1.0, "burst")


class TestSpikeDuringSprint:
    def test_spike_forces_normal_operation(self):
        event = UtilityEvent(UtilityEventKind.SPIKE, 200.0, 60.0, 1.15)
        result = run_with_utility_events(
            burst_trace(), [event], config=SMALL
        )
        degrees = result.degrees
        # Sprinting before the spike...
        assert degrees[150] > 1.5
        # ...at most normal during it...
        assert max(degrees[205:255]) <= 1.0 + 1e-9
        # ...and resumed afterwards.
        assert max(degrees[300:400]) > 1.5

    def test_sprint_resumes_with_remaining_energy(self):
        event = UtilityEvent(UtilityEventKind.SPIKE, 200.0, 60.0, 1.15)
        with_spike = run_with_utility_events(
            burst_trace(), [event], config=SMALL
        )
        without = run_with_utility_events(burst_trace(), [], config=SMALL)
        # During the spike window itself, demand goes unserved...
        spike_served = with_spike.served[205:255]
        assert spike_served.max() <= 1.0 + 1e-9
        # ...but overall the episode stays close to the undisturbed run —
        # the energy conserved during the forced pause serves the burst's
        # tail (on an energy-bound burst the pause can even help, the same
        # efficiency effect as a constrained sprinting degree).
        assert with_spike.average_performance == pytest.approx(
            without.average_performance, rel=0.05
        )
        assert with_spike.average_performance > 1.3

    def test_no_events_matches_plain_run(self):
        from repro.core.strategies import GreedyStrategy
        from repro.simulation.engine import simulate_strategy

        plain = simulate_strategy(burst_trace(), GreedyStrategy(), SMALL)
        scenario = run_with_utility_events(burst_trace(), [], config=SMALL)
        assert scenario.average_performance == pytest.approx(
            plain.average_performance
        )

    def test_outage_event_also_desprints(self):
        event = UtilityEvent(UtilityEventKind.OUTAGE, 200.0, 30.0)
        result = run_with_utility_events(burst_trace(), [event], config=SMALL)
        assert max(result.degrees[205:225]) <= 1.0 + 1e-9

    def test_packaged_scenario_runs(self):
        result = spike_during_sprint_scenario(config=SMALL)
        assert result.average_performance > 1.0
        # The spike window is de-sprinted.
        window = result.degrees[555:605]
        assert max(window) <= 1.0 + 1e-9
