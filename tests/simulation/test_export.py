"""Tests for result export (CSV/JSON)."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import simulate_strategy
from repro.simulation.export import (
    STEP_FIELDS,
    result_summary_dict,
    result_to_records,
    write_steps_csv,
    write_summary_json,
)
from repro.simulation.metrics import SimulationResult
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


@pytest.fixture(scope="module")
def result():
    values = [0.8] * 30 + [2.2] * 120 + [0.8] * 30
    trace = Trace(np.asarray(values, dtype=float), 1.0, "export-test")
    return simulate_strategy(trace, GreedyStrategy(), SMALL)


class TestRecords:
    def test_one_record_per_step(self, result):
        records = result_to_records(result)
        assert len(records) == len(result.steps)

    def test_record_fields(self, result):
        record = result_to_records(result)[0]
        for field in STEP_FIELDS:
            assert field in record
        assert "phase" in record

    def test_values_are_plain_python(self, result):
        record = result_to_records(result)[100]
        for key, value in record.items():
            assert isinstance(value, (float, str)), key


class TestCsv:
    def test_round_trip(self, result, tmp_path):
        path = write_steps_csv(result, tmp_path / "steps.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.steps)
        assert float(rows[100]["served"]) == pytest.approx(
            result.steps[100].served
        )
        assert rows[100]["phase"] == result.steps[100].phase.value

    def test_empty_result_rejected(self, result, tmp_path):
        empty = SimulationResult(
            trace=result.trace,
            strategy_name="x",
            steps=[],
            energy_shares={},
            time_in_phase_s={},
            dropped_integral=0.0,
            served_integral=0.0,
            demand_integral=0.0,
        )
        with pytest.raises(ConfigurationError):
            write_steps_csv(empty, tmp_path / "nope.csv")


class TestJson:
    def test_summary_dict_is_json_safe(self, result):
        payload = result_summary_dict(result)
        text = json.dumps(payload)  # must not raise
        restored = json.loads(text)
        assert restored["strategy"] == "greedy"
        assert restored["average_performance"] > 1.0
        assert "phase2-ups" in restored["time_in_phase_s"]

    def test_write_summary_json(self, result, tmp_path):
        path = write_summary_json([result, result], tmp_path / "summary.json")
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        assert payload[0]["trace"] == "export-test"

    def test_empty_list_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_summary_json([], tmp_path / "nope.json")
