"""Tests for the batch sweep engine: determinism, cache keys, cache trust.

The regression layer the batch subsystem is built against:

* parallel output must be element-wise identical to the serial path;
* the content-addressed cache key must cover every input that can change
  an outcome (and nothing cosmetic);
* the on-disk cache must detect corrupt or tampered entries and
  recompute instead of trusting them.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.errors import (
    BreakerTrippedError,
    ConfigurationError,
    SimulationError,
)
from repro.simulation.batch import (
    CACHE_FORMAT_VERSION,
    RunFailure,
    StrategySpec,
    SweepOutcome,
    SweepRunner,
    SweepTask,
    config_fields,
    execute_task,
)
from repro.simulation.faults import FaultPlan
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import (
    build_upper_bound_table,
    oracle_for_trace,
    simulate_strategy,
)
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

CANDIDATES = (2.0, 3.0, 4.0)


def burst_trace(level=2.8, burst_s=150, total_s=300, dt_s=1.0, name="burst"):
    values = [0.8] * 30 + [level] * burst_s
    values += [0.8] * (total_s - len(values))
    return Trace(np.asarray(values), dt_s, name)


def tiny_factory(degree, duration_min):
    return burst_trace(
        level=degree,
        burst_s=int(duration_min * 60),
        total_s=int(duration_min * 60) + 120,
        name=f"tiny-{degree:g}-{duration_min:g}",
    )


# ---------------------------------------------------------------------------
# Parallel output == serial output
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_parallel_oracle_search_identical_to_serial(self):
        trace = burst_trace()
        serial = SweepRunner(max_workers=1)
        parallel = SweepRunner(max_workers=2)
        a = serial.oracle_search(trace, candidates=CANDIDATES, config=SMALL)
        b = parallel.oracle_search(trace, candidates=CANDIDATES, config=SMALL)
        assert a.upper_bound == b.upper_bound
        assert a.achieved_performance == b.achieved_performance

    def test_parallel_table_identical_to_serial(self):
        kwargs = dict(
            config=SMALL,
            burst_durations_min=(1.0, 2.0),
            burst_degrees=(2.5, 3.0),
            candidates=CANDIDATES,
            trace_factory=tiny_factory,
        )
        serial = SweepRunner(max_workers=1).build_upper_bound_table(**kwargs)
        parallel = SweepRunner(max_workers=2).build_upper_bound_table(**kwargs)
        assert serial.entries() == parallel.entries()
        assert len(serial) == 4

    def test_parallel_outcomes_elementwise_identical(self):
        """Every field of every outcome matches the serial run exactly."""
        trace = burst_trace()
        tasks = [
            SweepTask(trace, StrategySpec.greedy(), SMALL),
            SweepTask(trace, StrategySpec.fixed(2.5), SMALL),
            SweepTask(trace, StrategySpec.heuristic(2.4), SMALL),
        ]
        serial = SweepRunner(max_workers=1).run_tasks(tasks)
        parallel = SweepRunner(max_workers=2).run_tasks(tasks)
        assert serial == parallel

    def test_engine_delegation_matches_legacy_serial_loop(self):
        """The rewired engine functions reproduce the historical in-process
        loop bit-for-bit (FixedUpperBoundStrategy runs, first-best argmax)."""
        trace = burst_trace(level=3.0, burst_s=240, total_s=420)
        oracle = oracle_for_trace(trace, SMALL, candidates=CANDIDATES)
        legacy = {
            ub: simulate_strategy(
                trace,
                __import__(
                    "repro.core.strategies", fromlist=["FixedUpperBoundStrategy"]
                ).FixedUpperBoundStrategy(ub),
                SMALL,
            ).average_performance
            for ub in CANDIDATES
        }
        best = max(CANDIDATES, key=lambda ub: (legacy[ub], -CANDIDATES.index(ub)))
        assert oracle.upper_bound == best
        assert oracle.achieved_performance == legacy[best]

    def test_cached_rerun_identical_and_compute_free(self, tmp_path):
        """A warm rerun returns identical outcomes without executing a
        single simulation (execute_task is monkeypatch-poisoned)."""
        trace = burst_trace()
        tasks = [
            SweepTask(trace, StrategySpec.fixed(ub), SMALL) for ub in CANDIDATES
        ]
        cold_runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        cold = cold_runner.run_tasks(tasks)
        assert cold_runner.misses == len(tasks)

        warm_runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        import repro.simulation.batch as batch_module

        def _poisoned(task):
            raise AssertionError("cache miss on a warm rerun")

        original = batch_module.execute_task
        batch_module.execute_task = _poisoned
        try:
            warm = warm_runner.run_tasks(tasks)
        finally:
            batch_module.execute_task = original
        assert warm == cold
        assert warm_runner.hits == len(tasks)
        assert warm_runner.misses == 0


# ---------------------------------------------------------------------------
# Cache-key properties
# ---------------------------------------------------------------------------
#: One deliberate perturbation per configuration field.  Adding a field to
#: DataCenterConfig without extending this map fails the coverage test
#: below — by design: every field must reach the cache key.
FIELD_PERTURBATIONS = {
    "n_pdus": 3,
    "servers_per_pdu": 51,
    "total_cores": 50,
    "normal_cores": 10,
    "core_power_w": 2.6,
    "idle_chip_power_w": 5.5,
    "non_cpu_power_w": 21.0,
    "throughput_max_capacity": 2.5,
    "dc_headroom_fraction": 0.12,
    "ups_capacity_ah": 0.6,
    "ups_voltage_v": 12.0,
    "pue": 1.6,
    "chiller_margin": 1.2,
    "has_tes": False,
    "tes_runtime_min": 10.0,
    "enforce_chip_thermal": False,
    "chip_sprint_endurance_min": 25.0,
    "dt_s": 2.0,
    "reserve_trip_time_s": 30.0,
    "thermal_margin_k": 1.5,
}


class TestCacheKey:
    def test_equal_inputs_hash_equal(self):
        a = SweepTask(burst_trace(), StrategySpec.fixed(2.5), SMALL)
        b = SweepTask(
            burst_trace(),
            StrategySpec.fixed(2.5),
            DataCenterConfig(n_pdus=2, servers_per_pdu=50),
        )
        assert a.cache_key() == b.cache_key()

    def test_perturbation_map_covers_every_config_field(self):
        assert set(FIELD_PERTURBATIONS) == set(config_fields()), (
            "a DataCenterConfig field has no cache-key perturbation case; "
            "add it to FIELD_PERTURBATIONS"
        )

    @pytest.mark.parametrize("field_name", sorted(FIELD_PERTURBATIONS))
    def test_any_config_field_changes_the_key(self, field_name):
        base = SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)
        changed_config = SMALL.with_changes(
            **{field_name: FIELD_PERTURBATIONS[field_name]}
        )
        assert dataclasses.asdict(changed_config) != dataclasses.asdict(SMALL)
        changed = SweepTask(burst_trace(), StrategySpec.greedy(), changed_config)
        assert base.cache_key() != changed.cache_key()

    def test_one_trace_sample_changes_the_key(self):
        trace = burst_trace()
        samples = trace.samples.copy()
        samples[17] += 1e-9
        perturbed = Trace(samples, trace.dt_s, trace.name)
        base = SweepTask(trace, StrategySpec.greedy(), SMALL)
        changed = SweepTask(perturbed, StrategySpec.greedy(), SMALL)
        assert base.cache_key() != changed.cache_key()

    def test_trace_dt_changes_the_key(self):
        base = SweepTask(burst_trace(dt_s=1.0), StrategySpec.greedy(), SMALL)
        changed = SweepTask(burst_trace(dt_s=2.0), StrategySpec.greedy(), SMALL)
        assert base.cache_key() != changed.cache_key()

    def test_trace_name_does_not_change_the_key(self):
        """The display name cannot influence the dynamics; renaming a trace
        must not evict its cached outcomes."""
        base = SweepTask(burst_trace(name="a"), StrategySpec.greedy(), SMALL)
        renamed = SweepTask(burst_trace(name="b"), StrategySpec.greedy(), SMALL)
        assert base.cache_key() == renamed.cache_key()

    def test_strategy_spec_changes_the_key(self):
        trace = burst_trace()
        keys = {
            SweepTask(trace, spec, SMALL).cache_key()
            for spec in (
                StrategySpec.greedy(),
                StrategySpec.fixed(2.5),
                StrategySpec.fixed(3.0),
                StrategySpec.heuristic(2.4),
                StrategySpec.heuristic(2.4, flexibility_percent=20.0),
            )
        }
        assert len(keys) == 5


# ---------------------------------------------------------------------------
# Cache trust: corrupt entries are recomputed, not believed
# ---------------------------------------------------------------------------
class TestCacheIntegrity:
    @pytest.fixture()
    def cached_task(self, tmp_path):
        task = SweepTask(burst_trace(), StrategySpec.fixed(2.5), SMALL)
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        outcome = runner.run_tasks([task])[0]
        path = tmp_path / f"{task.cache_key()}.json"
        assert path.is_file()
        return task, outcome, path, tmp_path

    @staticmethod
    def _recompute(task, tmp_path):
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        result = runner.run_tasks([task])[0]
        return result, runner

    def test_truncated_file_is_recomputed(self, cached_task):
        task, outcome, path, tmp_path = cached_task
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        recomputed, runner = self._recompute(task, tmp_path)
        assert runner.misses == 1 and runner.hits == 0
        assert recomputed == outcome
        # The sweep also repaired the entry in place.
        assert json.loads(path.read_text())["key"] == task.cache_key()

    def test_garbage_bytes_are_recomputed(self, cached_task):
        task, outcome, path, tmp_path = cached_task
        path.write_bytes(b"\x00\xffnot json at all")
        recomputed, runner = self._recompute(task, tmp_path)
        assert runner.misses == 1
        assert recomputed == outcome

    def test_key_mismatch_is_recomputed(self, cached_task):
        """An entry whose embedded key disagrees with its filename (e.g. a
        file copied between cache dirs, or a hash collision attack) is not
        trusted."""
        task, outcome, path, tmp_path = cached_task
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        recomputed, runner = self._recompute(task, tmp_path)
        assert runner.misses == 1
        assert recomputed == outcome

    def test_version_mismatch_is_recomputed(self, cached_task):
        task, outcome, path, tmp_path = cached_task
        payload = json.loads(path.read_text())
        payload["version"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        recomputed, runner = self._recompute(task, tmp_path)
        assert runner.misses == 1
        assert recomputed == outcome

    def test_tampered_outcome_fields_are_rejected(self, cached_task):
        task, outcome, path, tmp_path = cached_task
        payload = json.loads(path.read_text())
        del payload["outcome"]["average_performance"]
        path.write_text(json.dumps(payload))
        recomputed, runner = self._recompute(task, tmp_path)
        assert runner.misses == 1
        assert recomputed == outcome


# ---------------------------------------------------------------------------
# API edges
# ---------------------------------------------------------------------------
class TestRunnerApi:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            SweepRunner(max_workers=0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            SweepRunner().oracle_search(burst_trace(), candidates=())

    def test_outcome_roundtrips_through_json(self):
        outcome = execute_task(
            SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)
        )
        assert SweepOutcome.from_dict(outcome.to_dict()) == outcome

    def test_spec_builds_every_kind(self):
        from repro.core.strategies import (
            FixedUpperBoundStrategy,
            GreedyStrategy,
            HeuristicStrategy,
            PredictionStrategy,
        )

        table = build_upper_bound_table(
            config=SMALL,
            burst_durations_min=(1.0,),
            burst_degrees=(2.8,),
            candidates=(2.0, 4.0),
            trace_factory=tiny_factory,
        )
        assert isinstance(StrategySpec.greedy().build(SMALL), GreedyStrategy)
        assert isinstance(
            StrategySpec.fixed(2.5).build(SMALL), FixedUpperBoundStrategy
        )
        prediction = StrategySpec.prediction(table, 120.0).build(SMALL)
        assert isinstance(prediction, PredictionStrategy)
        assert prediction.table.entries() == table.entries()
        assert isinstance(
            StrategySpec.heuristic(2.4).build(SMALL), HeuristicStrategy
        )

    def test_unknown_spec_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            StrategySpec(kind="psychic").build(SMALL)

    def test_run_tasks_preserves_input_order(self, tmp_path):
        trace = burst_trace()
        bounds = (3.0, 2.0, 4.0)
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        performances = runner.evaluate_upper_bounds(trace, bounds, SMALL)
        direct = [
            execute_task(
                SweepTask(trace, StrategySpec.fixed(ub), SMALL)
            ).average_performance
            for ub in bounds
        ]
        assert performances == direct


# ---------------------------------------------------------------------------
# Fault plans and structured failures
# ---------------------------------------------------------------------------
class TestFaultPlanCacheKey:
    def task(self, fault_plan=None):
        return SweepTask(
            burst_trace(), StrategySpec.greedy(), SMALL, fault_plan
        )

    def test_no_plan_and_empty_plan_hash_differently(self):
        assert self.task().cache_key() != self.task(FaultPlan()).cache_key()

    def test_plan_content_changes_the_key(self):
        a = self.task(FaultPlan.from_specs(["breaker@120s"]))
        b = self.task(FaultPlan.from_specs(["breaker@121s"]))
        assert a.cache_key() != b.cache_key()

    def test_equal_plans_hash_equal(self):
        a = self.task(FaultPlan.from_specs(["chiller@60s", "ups@10s"]))
        b = self.task(FaultPlan.from_specs(["ups@10s", "chiller@60s"]))
        assert a.cache_key() == b.cache_key()


class TestRunFailure:
    def test_round_trips_through_json(self):
        failure = RunFailure(
            strategy_name="greedy",
            error_type="BreakerTrippedError",
            message="circuit breaker 'pdu' tripped at t=42.0s",
            time_s=42.0,
        )
        payload = json.loads(json.dumps(failure.to_dict()))
        assert RunFailure.from_dict(payload) == failure
        assert failure.failed

    def test_none_time_round_trips(self):
        failure = RunFailure("greedy", "TankDepletedError", "empty")
        assert RunFailure.from_dict(failure.to_dict()).time_s is None

    def test_outcome_is_not_failed(self):
        result = execute_task(SweepTask(burst_trace(), StrategySpec.greedy(), SMALL))
        assert not result.failed


class TestExecuteTaskFailureHandling:
    def test_repro_error_becomes_run_failure(self, monkeypatch):
        def boom(*args, **kwargs):
            raise BreakerTrippedError("pdu/breaker", time_s=42.0)

        monkeypatch.setattr(
            "repro.simulation.batch.simulate_strategy", boom
        )
        result = execute_task(
            SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)
        )
        assert isinstance(result, RunFailure)
        assert result.error_type == "BreakerTrippedError"
        assert result.time_s == pytest.approx(42.0)
        assert result.strategy_name == "greedy"

    def test_configuration_error_still_raises(self, monkeypatch):
        def boom(*args, **kwargs):
            raise ConfigurationError("malformed task")

        monkeypatch.setattr(
            "repro.simulation.batch.simulate_strategy", boom
        )
        with pytest.raises(ConfigurationError):
            execute_task(SweepTask(burst_trace(), StrategySpec.greedy(), SMALL))

    def test_failures_cache_and_reload(self, tmp_path, monkeypatch):
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise BreakerTrippedError("pdu/breaker", time_s=7.0)

        monkeypatch.setattr(
            "repro.simulation.batch.simulate_strategy", boom
        )
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        task = SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)
        first = runner.run_tasks([task])[0]
        again = runner.run_tasks([task])[0]
        assert isinstance(first, RunFailure)
        assert again == first
        assert len(calls) == 1  # the rerun was answered from the cache
        assert runner.hits == 1 and runner.misses == 1


class TestMPCSpec:
    """MPC through the batch engine: spec fidelity, cache-key coverage,
    parallel determinism and cached-failure semantics."""

    BASE = StrategySpec.mpc(
        candidate_bounds=(2.0, 3.0, 4.0),
        horizon_s=120.0,
        replan_interval_s=60.0,
    )

    #: One deliberate perturbation per StrategySpec field.  Adding a field
    #: to StrategySpec without extending this map fails the coverage test
    #: below — the same guard FIELD_PERTURBATIONS gives DataCenterConfig.
    SPEC_FIELD_PERTURBATIONS = {
        "kind": {"kind": "greedy"},
        "upper_bound": {"upper_bound": 2.5},
        "predicted_burst_duration_s": {"predicted_burst_duration_s": 900.0},
        "estimated_best_degree": {"estimated_best_degree": 2.4},
        "flexibility_percent": {"flexibility_percent": 20.0},
        "max_degree": {"max_degree": 3.5},
        "table_entries": {"table_entries": ((300.0, 3.2, 4.0),)},
        "horizon_s": {"horizon_s": 300.0},
        "replan_interval_s": {"replan_interval_s": 30.0},
        "candidate_bounds": {"candidate_bounds": (2.0, 3.0)},
        "forecast": {"forecast": "predicted"},
        "violation_penalty_s": {"violation_penalty_s": 60.0},
    }

    def test_perturbation_map_covers_every_spec_field(self):
        spec_fields = {f.name for f in dataclasses.fields(StrategySpec)}
        assert set(self.SPEC_FIELD_PERTURBATIONS) == spec_fields, (
            "a StrategySpec field has no cache-key perturbation case; "
            "add it to SPEC_FIELD_PERTURBATIONS"
        )

    @pytest.mark.parametrize(
        "field_name", sorted(SPEC_FIELD_PERTURBATIONS)
    )
    def test_any_spec_field_changes_the_key(self, field_name):
        base = SweepTask(burst_trace(), self.BASE, SMALL)
        changed_spec = dataclasses.replace(
            self.BASE, **self.SPEC_FIELD_PERTURBATIONS[field_name]
        )
        changed = SweepTask(burst_trace(), changed_spec, SMALL)
        assert base.cache_key() != changed.cache_key()

    def test_spec_builds_a_faithful_strategy(self):
        from repro.core.strategies import MPCStrategy

        strategy = self.BASE.build(SMALL)
        assert isinstance(strategy, MPCStrategy)
        assert strategy.candidate_bounds == (2.0, 3.0, 4.0)
        assert strategy.horizon_s == 120.0
        assert strategy.replan_interval_s == 60.0
        assert strategy.forecast == "perfect"

    def test_incomplete_mpc_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="mpc spec"):
            StrategySpec(kind="mpc").build(SMALL)

    def test_spec_is_picklable(self):
        import pickle

        assert pickle.loads(pickle.dumps(self.BASE)) == self.BASE

    def test_parallel_mpc_identical_to_serial(self, monkeypatch):
        """Element-wise serial/parallel identity for MPC tasks, with the
        worker count coming from REPRO_SWEEP_WORKERS (the CI knob)."""
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "off")
        trace = burst_trace()
        tasks = [
            SweepTask(trace, self.BASE, SMALL),
            SweepTask(
                trace,
                StrategySpec.mpc(
                    candidate_bounds=CANDIDATES, horizon_s=240.0
                ),
                SMALL,
            ),
            SweepTask(trace, StrategySpec.greedy(), SMALL),
        ]
        serial = SweepRunner(max_workers=1).run_tasks(tasks)
        parallel_runner = SweepRunner.from_env()
        assert parallel_runner.max_workers == 2
        assert parallel_runner.cache_dir is None
        parallel = parallel_runner.run_tasks(tasks)
        assert serial == parallel

    def test_mpc_failure_caches_and_reloads(self, tmp_path, monkeypatch):
        """A RunFailure from an MPC task is cached and replayed like any
        outcome: the rerun never re-executes the simulation."""
        calls = []

        def boom(*args, **kwargs):
            calls.append(1)
            raise BreakerTrippedError("pdu/breaker", time_s=7.0)

        monkeypatch.setattr(
            "repro.simulation.batch.simulate_strategy", boom
        )
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        task = SweepTask(burst_trace(), self.BASE, SMALL)
        first = runner.run_tasks([task])[0]
        again = runner.run_tasks([task])[0]
        assert isinstance(first, RunFailure)
        assert first.strategy_name == "mpc"
        assert again == first
        assert len(calls) == 1
        assert runner.hits == 1 and runner.misses == 1


class TestFailureAwareSearch:
    def _failing_runner(self, monkeypatch, failing_bounds, tmp_path=None):
        real = execute_task

        def selective(task):
            if task.spec.upper_bound in failing_bounds:
                return RunFailure(
                    task.spec.kind, "BreakerTrippedError", "injected", 1.0
                )
            return real(task)

        monkeypatch.setattr("repro.simulation.batch.execute_task", selective)
        # The shared-prefix and vector batch fast paths simulate in-process
        # (they never go through execute_task), so force the reference
        # per-candidate fallback — the path whose failure-aware reduction
        # is under test.
        monkeypatch.setattr(
            "repro.simulation.batch.shared_prefix_oracle_search",
            lambda *args, **kwargs: None,
        )
        monkeypatch.setattr(
            "repro.simulation.batch.vector_oracle_search",
            lambda *args, **kwargs: None,
        )
        monkeypatch.setattr(
            "repro.simulation.batch.vector_pack_tasks",
            lambda tasks: [None] * len(tasks),
        )
        monkeypatch.setattr(
            "repro.simulation.batch.packed_point_searches",
            lambda *args, **kwargs: None,
        )
        return SweepRunner(max_workers=1, cache_dir=tmp_path)

    def test_evaluate_upper_bounds_maps_failures_to_nan(self, monkeypatch):
        runner = self._failing_runner(monkeypatch, {3.0})
        perfs = runner.evaluate_upper_bounds(burst_trace(), CANDIDATES, SMALL)
        assert math.isnan(perfs[1])
        assert all(math.isfinite(p) for i, p in enumerate(perfs) if i != 1)

    def test_oracle_search_skips_failed_candidates(self, monkeypatch):
        trace = burst_trace()
        full = SweepRunner(max_workers=1).oracle_search(
            trace, CANDIDATES, SMALL
        )
        runner = self._failing_runner(monkeypatch, {full.upper_bound})
        partial = runner.oracle_search(trace, CANDIDATES, SMALL)
        assert partial.upper_bound != full.upper_bound
        assert math.isfinite(partial.achieved_performance)

    def test_oracle_search_raises_when_every_candidate_fails(self, monkeypatch):
        runner = self._failing_runner(monkeypatch, set(CANDIDATES))
        with pytest.raises(SimulationError):
            runner.oracle_search(burst_trace(), CANDIDATES, SMALL)
