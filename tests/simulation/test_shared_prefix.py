"""Differential validation of the shared-prefix Oracle search.

:func:`~repro.simulation.engine.shared_prefix_oracle_search` runs one
instrumented baseline and resumes per-candidate suffixes from snapshots;
its contract is *bit-identity* with the reference sweep — one full
:func:`simulate_strategy` per candidate, NaN on failure, strict
first-wins argmax.  Every test here computes both and compares the chosen
bound and the achieved performance with ``==``, never ``approx``; any
drift in the snapshot engine, the divergence-frontier computation or the
tie-breaking shows up as a hard mismatch.

This file is the differential suite CI runs in the benchmark-smoke job
(under ``REPRO_SWEEP_WORKERS=2``) together with
``test_snapshot.py``'s round-trip checks.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.strategies import FixedUpperBoundStrategy
from repro.errors import ReproError
from repro.simulation.batch import SweepRunner
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import (
    shared_prefix_oracle_search,
    simulate_strategy,
)
from repro.simulation.faults import FaultEvent, FaultPlan
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

#: An ascending grid with clamp-induced ties: 4.5 and 5.0 both clamp to
#: the cluster's max degree, so they duplicate 4.0's run exactly.
GRID = (1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)


def random_trace(seed: int, n: int = 420, dt_s: float = 1.0) -> Trace:
    """Randomised demand with idle stretches and hard bursts (same shape
    as the kernel differential suite's generator)."""
    rng = np.random.default_rng(seed)
    base = 0.55 + 0.3 * rng.random(n)
    for _ in range(rng.integers(1, 4)):
        start = int(rng.integers(0, n - 40))
        length = int(rng.integers(20, 120))
        base[start:start + length] += rng.uniform(0.8, 3.0)
    return Trace(np.clip(base, 0.0, 4.5), dt_s=dt_s, name=f"random-{seed}")


def reference_search(trace, candidates, config, fault_plan=None):
    """The reference Oracle: one full run per candidate, strict argmax."""
    best_bound, best_perf = None, -math.inf
    for bound in candidates:
        try:
            result = simulate_strategy(
                trace,
                FixedUpperBoundStrategy(float(bound)),
                config,
                fault_plan=fault_plan,
            )
        except ReproError:
            continue
        if result.average_performance > best_perf:
            best_perf = result.average_performance
            best_bound = float(bound)
    assert best_bound is not None
    return best_bound, best_perf


class TestNoFaultEquality:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_traces(self, seed):
        trace = random_trace(seed)
        fast = shared_prefix_oracle_search(trace, GRID, SMALL)
        assert fast is not None
        assert fast == reference_search(trace, GRID, SMALL)

    @pytest.mark.parametrize("seed", (50, 51))
    def test_unsorted_candidate_order(self, seed):
        """First-wins argmax depends on candidate *order*, not value —
        both paths must honour the caller's ordering identically."""
        trace = random_trace(seed)
        candidates = (4.0, 2.0, 3.5, 2.5, 3.0)
        fast = shared_prefix_oracle_search(trace, candidates, SMALL)
        assert fast is not None
        assert fast == reference_search(trace, candidates, SMALL)

    def test_no_burst_trace(self):
        """Degenerate flat demand: performance is 1.0 for everyone and the
        first candidate wins the tie."""
        flat = Trace(np.full(300, 0.8), 1.0, "flat")
        fast = shared_prefix_oracle_search(flat, (2.0, 3.0, 4.0), SMALL)
        assert fast == (2.0, 1.0)
        assert fast == reference_search(flat, (2.0, 3.0, 4.0), SMALL)

    def test_short_burst_ties_resolve_to_lowest_bound(self):
        """A burst too short to exhaust any budget: every bound ≥ the
        burst degree serves it fully, and the lowest such bound wins."""
        values = [0.8] * 60 + [1.5] * 45 + [0.8] * 200
        trace = Trace(np.asarray(values, dtype=float), 1.0, "tie")
        fast = shared_prefix_oracle_search(trace, (2.0, 3.0, 4.0), SMALL)
        assert fast is not None
        assert fast[0] == 2.0
        assert fast == reference_search(trace, (2.0, 3.0, 4.0), SMALL)

    def test_long_extreme_burst(self):
        """A 40-minute degree-4 burst drains every reserve: the interior
        bound wins and both paths agree bit-for-bit."""
        values = [0.8] * 120 + [4.0] * 2400 + [0.8] * 300
        trace = Trace(np.asarray(values, dtype=float), 1.0, "extreme")
        fast = shared_prefix_oracle_search(trace, GRID, SMALL)
        assert fast is not None
        assert fast == reference_search(trace, GRID, SMALL)

    def test_default_config_yahoo(self, yahoo_trace_5min):
        """Full paper-size facility on a generated Yahoo trace."""
        candidates = (2.0, 2.5, 3.0, 3.5, 4.0)
        config = DataCenterConfig()
        fast = shared_prefix_oracle_search(
            yahoo_trace_5min, candidates, config
        )
        assert fast is not None
        assert fast == reference_search(yahoo_trace_5min, candidates, config)


class TestFaultEquality:
    PLANS = {
        "chiller-mid-burst": FaultPlan((
            FaultEvent.parse("chiller@150s:fraction=0.6,duration=90"),
        )),
        "ups-mid-burst": FaultPlan((
            FaultEvent.parse("ups@120s:fraction=0.4"),
        )),
        "breaker-and-gap": FaultPlan((
            FaultEvent.parse("breaker@100s:fraction=0.5"),
            FaultEvent.parse("gap@200s:duration=30"),
        )),
        "derate-pre-burst": FaultPlan((
            FaultEvent.parse("derate@30s:fraction=0.3,duration=300"),
        )),
    }

    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    @pytest.mark.parametrize("seed", (7, 19))
    def test_fault_plans(self, seed, plan_name):
        trace = random_trace(seed)
        plan = self.PLANS[plan_name]
        fast = shared_prefix_oracle_search(
            trace, GRID, SMALL, fault_plan=plan
        )
        assert fast is not None
        assert fast == reference_search(trace, GRID, SMALL, fault_plan=plan)


class TestValidityEnvelope:
    def test_empty_candidates_fall_back(self):
        assert shared_prefix_oracle_search(random_trace(0), (), SMALL) is None

    def test_dt_mismatch_falls_back(self):
        """The reference path owns the descriptive dt-mismatch error."""
        coarse = random_trace(1).resampled(5.0)
        assert shared_prefix_oracle_search(coarse, GRID, SMALL) is None

    def test_sub_normal_bound_falls_back(self):
        """A bound below the normal degree binds outside bursts, so the
        prefix is not shared and the fast path declines."""
        fast = shared_prefix_oracle_search(random_trace(2), (0.5, 2.0), SMALL)
        assert fast is None


class TestRunnerEntryPoint:
    """`SweepRunner.oracle_search` fronts the fast path with a search-level
    cache; cold and warm calls must agree with the reference."""

    def test_cold_and_warm_match_reference(self, tmp_path):
        trace = random_trace(3)
        with SweepRunner(max_workers=1, cache_dir=tmp_path) as runner:
            cold = runner.oracle_search(trace, candidates=GRID, config=SMALL)
            warm = runner.oracle_search(trace, candidates=GRID, config=SMALL)
        expected = reference_search(trace, GRID, SMALL)
        for oracle in (cold, warm):
            assert (oracle.upper_bound, oracle.achieved_performance) == expected

    def test_pooled_table_build_matches_serial(self, monkeypatch):
        """Entry-wise table equality between the pooled point searches and
        the serial path.  CI runs this under ``REPRO_SWEEP_WORKERS=2`` so
        the worker-shipped search genuinely crosses process boundaries;
        locally `from_env` falls back to cpu_count."""
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", "off")

        def factory(degree, duration_min):
            burst = int(duration_min * 60)
            values = [0.8] * 60 + [degree] * burst + [0.8] * 120
            return Trace(
                np.asarray(values, dtype=float),
                1.0,
                f"grid-{degree:g}-{duration_min:g}",
            )

        grid = dict(
            config=SMALL,
            burst_durations_min=(2.0, 6.0),
            burst_degrees=(2.8, 3.2),
            candidates=(2.0, 2.5, 3.0, 4.0),
            trace_factory=factory,
        )
        with SweepRunner.from_env() as pooled:
            table = pooled.build_upper_bound_table(**grid)
        with SweepRunner(max_workers=1) as serial:
            expected = serial.build_upper_bound_table(**grid)
        assert table.entries() == expected.entries()

    def test_fallback_path_matches(self, tmp_path, monkeypatch):
        """With the fast path disabled the runner's per-candidate sweep
        must land on the identical answer."""
        monkeypatch.setattr(
            "repro.simulation.batch.shared_prefix_oracle_search",
            lambda *args, **kwargs: None,
        )
        trace = random_trace(4)
        with SweepRunner(max_workers=1, cache_dir=tmp_path) as runner:
            oracle = runner.oracle_search(trace, candidates=GRID, config=SMALL)
        expected = reference_search(trace, GRID, SMALL)
        assert (oracle.upper_bound, oracle.achieved_performance) == expected
