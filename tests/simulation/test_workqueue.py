"""Work-queue backend: atomic claims, leases, dedup and crash recovery.

The claim primitive is a directory rename, so two *threads* draining one
queue exercise exactly the race the multi-process deployment has (the
atomicity is the filesystem's, not the GIL's) while staying countable
from the test process.  The crashed-worker test plants a stale lease by
hand — backdating its mtime — rather than actually killing a process, so
the reclaim path runs deterministically.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.batch import (
    StrategySpec,
    SweepRunner,
    SweepTask,
    execute_task,
)
from repro.simulation.config import DataCenterConfig
from repro.simulation.workqueue import (
    WorkQueue,
    _decode_task,
    drain,
    task_payload,
)
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=25)


def burst_trace(seed: int = 0, n: int = 80) -> Trace:
    rng = np.random.default_rng(seed)
    samples = 0.7 + 0.2 * rng.random(n)
    samples[25:55] += 1.8
    return Trace(samples, name=f"queue-{seed}")


def queue_tasks(n: int = 6) -> list:
    trace = burst_trace()
    return [
        SweepTask(trace, StrategySpec.fixed(2.0 + 0.25 * i), SMALL)
        for i in range(n)
    ]


class TestQueuePrimitives:
    def test_lease_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError, match="lease_timeout_s"):
            WorkQueue(tmp_path, lease_timeout_s=0.0)

    def test_task_payload_roundtrip_is_bit_exact(self, tmp_path):
        task = queue_tasks(1)[0]
        payload = json.loads(json.dumps(task_payload("t", task)))
        decoded = _decode_task(payload)
        assert decoded.spec == task.spec
        assert decoded.config == task.config
        assert decoded.trace.dt_s == task.trace.dt_s
        assert decoded.trace.samples.tobytes() == task.trace.samples.tobytes()
        assert decoded.cache_key() == task.cache_key()

    def test_enqueue_skips_answered_and_claimed_names(self, tmp_path):
        queue = WorkQueue(tmp_path)
        task = queue_tasks(1)[0]
        payload = task_payload("t", task)
        assert queue.enqueue("t", payload)
        assert not queue.enqueue("t", payload)  # still queued
        lease = queue.claim()
        assert lease is not None
        assert not queue.enqueue("t", payload)  # leased
        queue.complete(lease, {"status": "ok"})
        assert not queue.enqueue("t", payload)  # answered
        assert queue.pending_counts() == (0, 0, 1)

    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue("only", task_payload("only", queue_tasks(1)[0]))
        assert queue.claim() is not None
        assert queue.claim() is None


class TestCrashRecovery:
    def test_stale_lease_is_reclaimed_and_executed(self, tmp_path, caplog):
        """A worker that claimed a task and died (no heartbeat) must not
        lose the task: the next drain reclaims the stale lease and runs it.
        """
        queue = WorkQueue(tmp_path, lease_timeout_s=5.0)
        task = queue_tasks(1)[0]
        name = f"task-{task.cache_key()}"
        queue.enqueue(name, task_payload(name, task))
        lease = queue.claim()
        assert lease is not None
        stale = time.time() - 60.0
        os.utime(lease, times=(stale, stale))  # the "crash"

        with caplog.at_level("WARNING", logger="repro.simulation.workqueue"):
            executed = drain(queue)
        assert executed == 1
        assert any("stale lease" in r.message for r in caplog.records)
        assert queue.pending_counts() == (0, 0, 1)
        payload = queue.load_result(name)
        assert payload is not None and payload["status"] == "ok"

    def test_fresh_lease_is_left_alone(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_timeout_s=60.0)
        queue.enqueue("t", task_payload("t", queue_tasks(1)[0]))
        lease = queue.claim()
        assert lease is not None
        assert queue.reclaim_expired() == 0
        assert drain(queue) == 0  # nothing claimable, one-shot exit
        assert lease.is_file()

    def test_unreadable_task_file_publishes_an_error_result(self, tmp_path):
        queue = WorkQueue(tmp_path)
        (queue.tasks_dir / "broken.json").write_text("not json{")
        assert drain(queue) == 0
        payload = queue.load_result("broken")
        assert payload is not None and payload["status"] == "error"


class TestDedup:
    def test_claimed_task_with_published_result_is_not_reexecuted(
        self, tmp_path, monkeypatch
    ):
        calls = []
        real = execute_task
        monkeypatch.setattr(
            "repro.simulation.batch.execute_task",
            lambda task: (calls.append(1), real(task))[1],
        )
        queue = WorkQueue(tmp_path)
        task = queue_tasks(1)[0]
        queue.enqueue("t", task_payload("t", task))
        lease = queue.claim()
        assert lease is not None
        # Another host answers the same key while this lease is held.
        queue._write_atomic(
            queue.result_path("t"), {"status": "ok", "outcome": {}}
        )
        os.rename(lease, queue.tasks_dir / lease.name)  # requeue it
        assert drain(queue) == 0
        assert calls == []
        assert queue.pending_counts() == (0, 0, 1)

    def test_two_workers_drain_one_queue_without_double_execution(
        self, tmp_path, monkeypatch
    ):
        """Two concurrent drains over one queue: every task runs exactly
        once, and the result set matches the in-process reference."""
        tasks = queue_tasks(6)
        reference = SweepRunner(max_workers=1, vector_pack=False).run_tasks(
            tasks
        )

        lock = threading.Lock()
        executions: dict = {}
        real = execute_task

        def counting(task):
            with lock:
                key = task.cache_key()
                executions[key] = executions.get(key, 0) + 1
            return real(task)

        monkeypatch.setattr("repro.simulation.batch.execute_task", counting)

        queue = WorkQueue(tmp_path)
        names = []
        for task in tasks:
            name = f"task-{task.cache_key()}"
            names.append(name)
            queue.enqueue(name, task_payload(name, task))

        counts = []

        def worker():
            counts.append(drain(queue, idle_timeout_s=0.3))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert sum(counts) == len(tasks)
        assert all(n == 1 for n in executions.values())
        assert len(executions) == len(tasks)
        assert queue.pending_counts() == (0, 0, len(tasks))

        from repro.simulation.workqueue import WorkQueueScheduler

        scheduler = WorkQueueScheduler(tmp_path)
        assert scheduler.run_tasks(tasks) == reference
        # The driver answered everything from published results.
        assert all(n == 1 for n in executions.values())


class TestDriverErrorPropagation:
    def test_remote_configuration_error_raises_in_driver(
        self, tmp_path, monkeypatch
    ):
        def boom(task):
            raise ConfigurationError("injected defect")

        monkeypatch.setattr("repro.simulation.batch.execute_task", boom)
        runner = SweepRunner(
            max_workers=1,
            backend="work-queue",
            queue_dir=tmp_path / "queue",
        )
        with pytest.raises(ConfigurationError, match="injected defect"):
            runner.run_tasks(queue_tasks(1))
