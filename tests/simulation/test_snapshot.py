"""Round-trip tests for the snapshot/fork engine.

:class:`~repro.simulation.snapshot.FacilityState` promises a bit-for-bit
round trip: capture a running facility, keep stepping, restore, and the
re-stepped run must reproduce the original continuation exactly — every
field of every :class:`ControlStep`, not approximately.  That contract is
what makes the shared-prefix Oracle search sound, so these tests compare
with ``==`` (NaN-aware where needed) and never with ``approx``.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.strategies import FixedUpperBoundStrategy
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import _faulted_sample
from repro.simulation.faults import FaultEvent, FaultInjector, FaultPlan
from repro.simulation.snapshot import FacilityState, capture, restore
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def burst_trace(level=2.6, burst_s=240, total_s=480) -> Trace:
    values = [0.8] * 60 + [level] * burst_s
    values += [0.8] * (total_s - len(values))
    return Trace(np.asarray(values), 1.0, "burst")


def assert_steps_identical(a, b) -> None:
    """Field-by-field exact equality across two ControlStep sequences."""
    assert len(a) == len(b)
    for step_a, step_b in zip(a, b):
        for field in dataclasses.fields(step_a):
            va = getattr(step_a, field.name)
            vb = getattr(step_b, field.name)
            if isinstance(va, float):
                assert va == vb or (
                    math.isnan(va) and math.isnan(vb)
                ), field.name
            else:
                assert va == vb, field.name


class TestRoundTrip:
    def test_capture_is_deterministic(self):
        """Two captures with no step in between compare equal (NaN-aware:
        ``tripped_at_s`` and ``last_needed_degree`` start as NaN)."""
        dc = build_datacenter(SMALL)
        controller = dc.controller(FixedUpperBoundStrategy(3.0))
        first = FacilityState.capture(dc, controller)
        second = FacilityState.capture(dc, controller)
        assert first == second

    def test_restore_round_trips_state(self):
        """capture → step onwards → restore → capture compares equal."""
        trace = burst_trace()
        dc = build_datacenter(SMALL)
        controller = dc.controller(FixedUpperBoundStrategy(3.0))
        for i, demand in enumerate(trace):
            if i == 120:
                break
            controller.step(demand, float(i))
        state = capture(dc, controller)
        for i in range(120, 200):
            controller.step(float(trace.samples[i]), float(i))
        assert FacilityState.capture(dc, controller) != state
        restore(state, dc, controller)
        assert FacilityState.capture(dc, controller) == state

    def test_forked_continuation_is_bit_identical(self):
        """The core contract: a restored run re-steps exactly the steps the
        uninterrupted run produced, mid-burst, onto a *fresh* controller."""
        trace = burst_trace()
        dc = build_datacenter(SMALL)
        controller = dc.controller(FixedUpperBoundStrategy(2.5))
        fork_at = 150  # mid-burst: breakers hot, battery draining
        for i in range(fork_at):
            controller.step(float(trace.samples[i]), float(i))
        state = FacilityState.capture(dc, controller)
        original = [
            controller.step(float(trace.samples[i]), float(i))
            for i in range(fork_at, len(trace.samples))
        ]
        forked_controller = dc.controller(FixedUpperBoundStrategy(2.5))
        forked_controller.strategy.reset()
        state.restore(dc, forked_controller)
        forked = [
            forked_controller.step(float(trace.samples[i]), float(i))
            for i in range(fork_at, len(trace.samples))
        ]
        assert_steps_identical(original, forked)

    def test_fork_with_fault_injector(self):
        """Snapshots carry injector state: pending events, armed expiries
        and rating mutations all resume exactly on the restored run."""
        trace = burst_trace(level=2.8, burst_s=300, total_s=540)
        plan = FaultPlan((
            FaultEvent.parse("chiller@100s:fraction=0.5,duration=120"),
            FaultEvent.parse("ups@260s:fraction=0.3"),
        ))
        dc = build_datacenter(SMALL)
        controller = dc.controller(FixedUpperBoundStrategy(3.0))
        injector = FaultInjector(plan, dc)
        fork_at = 180  # chiller outage active, UPS failure still pending
        try:
            for i in range(fork_at):
                _faulted_sample(
                    controller, injector, float(trace.samples[i]), float(i), i
                )
            state = FacilityState.capture(dc, controller, injector)
            original = [
                _faulted_sample(
                    controller, injector, float(trace.samples[i]), float(i), i
                )[0]
                for i in range(fork_at, len(trace.samples))
            ]
            forked_controller = dc.controller(FixedUpperBoundStrategy(3.0))
            forked_controller.strategy.reset()
            state.restore(dc, forked_controller, injector)
            forked = [
                _faulted_sample(
                    forked_controller, injector, float(trace.samples[i]), float(i), i
                )[0]
                for i in range(fork_at, len(trace.samples))
            ]
        finally:
            injector.restore_substrate()
        assert_steps_identical(original, forked)


class TestGuards:
    def test_capture_rejects_foreign_controller(self):
        dc_a = build_datacenter(SMALL)
        dc_b = build_datacenter(SMALL)
        foreign = dc_b.controller(FixedUpperBoundStrategy(3.0))
        with pytest.raises(ConfigurationError, match="substrate"):
            FacilityState.capture(dc_a, foreign)

    def test_restore_requires_matching_injector_presence(self):
        dc = build_datacenter(SMALL)
        controller = dc.controller(FixedUpperBoundStrategy(3.0))
        injector = FaultInjector(FaultPlan(), dc)
        state = FacilityState.capture(dc, controller, injector)
        with pytest.raises(ConfigurationError, match="injector"):
            state.restore(dc, controller)
        bare = FacilityState.capture(dc, controller)
        with pytest.raises(ConfigurationError, match="injector"):
            bare.restore(dc, controller, injector)
