"""Tests for capacity planning (storage sizing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.planning import (
    evaluate_sizing,
    sizing_frontier,
    smallest_ups_for_target,
)
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def burst_trace():
    values = [0.8] * 60 + [2.6] * 600 + [0.8] * 60
    return Trace(np.asarray(values, dtype=float), 1.0, "planning")


class TestEvaluateSizing:
    def test_returns_full_point(self):
        point = evaluate_sizing(burst_trace(), 0.5, 12.0, SMALL)
        assert point.ups_capacity_ah == 0.5
        assert point.tes_runtime_min == 12.0
        assert point.average_performance > 1.0
        assert 0.0 <= point.drop_fraction < 1.0

    def test_bigger_battery_serves_more(self):
        small = evaluate_sizing(burst_trace(), 0.25, 12.0, SMALL)
        big = evaluate_sizing(burst_trace(), 2.0, 12.0, SMALL)
        assert big.average_performance > small.average_performance

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            evaluate_sizing(burst_trace(), 0.0, 12.0, SMALL)


class TestSmallestUps:
    def test_finds_smallest_sufficient_battery(self):
        trace = burst_trace()
        # Pick a target the mid-size batteries can reach.
        generous = evaluate_sizing(trace, 4.0, 12.0, SMALL)
        modest_target = 1.0 + 0.7 * (generous.average_performance - 1.0)
        point = smallest_ups_for_target(
            trace, modest_target, candidates_ah=(0.25, 0.5, 1.0, 2.0, 4.0),
            config=SMALL,
        )
        assert point is not None
        assert point.average_performance >= modest_target
        # Minimality: the next size down misses the target.
        smaller_candidates = [
            c for c in (0.25, 0.5, 1.0, 2.0) if c < point.ups_capacity_ah
        ]
        if smaller_candidates:
            below = evaluate_sizing(
                trace, smaller_candidates[-1], 12.0, SMALL
            )
            assert below.average_performance < modest_target

    def test_unreachable_target_returns_none(self):
        point = smallest_ups_for_target(
            burst_trace(), 5.0, candidates_ah=(0.25, 0.5), config=SMALL
        )
        assert point is None

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            smallest_ups_for_target(burst_trace(), 1.5, candidates_ah=(),
                                    config=SMALL)


class TestFrontier:
    def test_full_grid_evaluated(self):
        points = sizing_frontier(
            burst_trace(),
            ups_candidates_ah=(0.25, 0.5),
            tes_candidates_min=(6.0, 12.0),
            config=SMALL,
        )
        assert len(points) == 4
        combos = {(p.ups_capacity_ah, p.tes_runtime_min) for p in points}
        assert combos == {(0.25, 6.0), (0.25, 12.0), (0.5, 6.0), (0.5, 12.0)}

    def test_performance_monotone_in_both_axes(self):
        points = sizing_frontier(
            burst_trace(),
            ups_candidates_ah=(0.25, 1.0),
            tes_candidates_min=(6.0, 24.0),
            config=SMALL,
        )
        by_combo = {
            (p.ups_capacity_ah, p.tes_runtime_min): p.average_performance
            for p in points
        }
        assert by_combo[(1.0, 24.0)] >= by_combo[(0.25, 24.0)]
        assert by_combo[(1.0, 24.0)] >= by_combo[(1.0, 6.0)]
