"""Rollout-differential harness for the MPC strategy (the fork engine user).

Three properties lock the tentpole in:

1. **No perturbation** — a rollout plan, however many candidate futures it
   simulates on the live substrate, leaves the live facility bit-for-bit
   unchanged.  Asserted two ways: a direct capture → plan → capture
   equality, and a differential control run — an MPC run must be
   step-for-step identical to a run replaying MPC's *committed* bound
   schedule through a scripted strategy that never plans at all.
2. **Oracle equivalence** — with a perfect forecast and a horizon covering
   the remaining trace, MPC's committed bound on a single-burst trace is
   exactly the Oracle's exhaustive-search bound (same candidate grid, same
   strict first-wins tie-break), and the realized run is bit-identical to
   the Fixed run at that bound.
3. **Graceful degradation** — covered by the fault-matrix side
   (``tests/integration/test_mpc_matrix.py``).

Like the snapshot suite these tests compare with ``==`` (NaN-aware where
needed), never with ``approx``: the fork contract is exactness.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.strategies import (
    DEFAULT_MPC_CANDIDATES,
    FixedUpperBoundStrategy,
    GreedyStrategy,
    MPCStrategy,
    SprintingStrategy,
    StrategyObservation,
)
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import (
    DEFAULT_ORACLE_GRID,
    oracle_for_trace,
    simulate_strategy,
)
from repro.simulation.faults import FaultPlan
from repro.simulation.rollout import (
    FALLBACK_BOUND,
    PerfectForecast,
    PlanContext,
    PredictedBurstForecast,
    RolloutPlanner,
    bind_rollout_planner,
    build_forecast,
)
from repro.simulation.snapshot import FacilityState
from repro.workloads.traces import Trace
from repro.workloads.yahoo_trace import generate_yahoo_trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

#: The Fig. 9 candidate grid; small enough to keep full-horizon rollouts
#: fast, wide enough that the argmax is interior on the 15-minute burst.
CANDIDATES = (2.0, 2.5, 3.0, 3.5, 4.0)


def burst_trace(level=2.6, burst_s=240, total_s=480) -> Trace:
    values = [0.8] * 60 + [level] * burst_s
    values += [0.8] * (total_s - len(values))
    return Trace(np.asarray(values), 1.0, "burst")


def assert_steps_identical(a, b) -> None:
    """Field-by-field exact equality across two ControlStep sequences."""
    assert len(a) == len(b)
    for step_a, step_b in zip(a, b):
        for field in dataclasses.fields(step_a):
            va = getattr(step_a, field.name)
            vb = getattr(step_b, field.name)
            if isinstance(va, float):
                assert va == vb or (
                    math.isnan(va) and math.isnan(vb)
                ), field.name
            else:
                assert va == vb, field.name


class _ScriptedBoundStrategy(SprintingStrategy):
    """Replays a recorded per-sample bound schedule; never plans."""

    name = "scripted"

    def __init__(self, bounds) -> None:
        self.bounds = tuple(bounds)

    def degree_upper_bound(self, obs: StrategyObservation) -> float:
        return self.bounds[int(round(obs.time_s))]

    def reset(self) -> None:
        pass


@pytest.fixture(scope="module")
def yahoo15():
    return generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)


def _mpc(**overrides) -> MPCStrategy:
    kwargs = dict(candidate_bounds=CANDIDATES, horizon_s=600.0)
    kwargs.update(overrides)
    return MPCStrategy(**kwargs)


class TestNoPerturbation:
    def test_plan_leaves_live_state_bit_identical(self, yahoo15):
        """capture → plan (5 candidate rollouts) → capture compares equal."""
        dc = build_datacenter(SMALL)
        strategy = _mpc()
        controller = dc.controller(strategy)
        planner = bind_rollout_planner(strategy, dc, controller, yahoo15)
        assert planner is not None
        for i in range(450):  # mid-burst: breakers hot, battery draining
            controller.step(float(yahoo15.samples[i]), float(i))
        before = FacilityState.capture(dc, controller)
        plans_before = planner.plans  # burst onset already planned once
        obs = StrategyObservation(
            time_s=450.0,
            demand=float(yahoo15.samples[450]),
            in_burst=True,
            time_in_burst_s=150.0,
            budget_fraction_remaining=0.5,
            max_degree=4.0,
            step_index=450,
        )
        planner.plan(obs)
        assert FacilityState.capture(dc, controller) == before
        assert planner.plans == plans_before + 1
        assert len(planner.last_scores) == len(CANDIDATES)

    def test_mpc_run_equals_committed_schedule_replay(self, yahoo15):
        """The differential control run: replaying the per-step bounds the
        MPC run committed — through a strategy that never rolls anything
        out — reproduces every ControlStep field exactly.  Any substrate
        leak from a rollout would show up here."""
        mpc = simulate_strategy(
            yahoo15, _mpc(replan_interval_s=120.0), SMALL
        )
        script = _ScriptedBoundStrategy(s.upper_bound for s in mpc.steps)
        control = simulate_strategy(yahoo15, script, SMALL)
        assert_steps_identical(mpc.steps, control.steps)

    def test_mpc_run_equals_replay_under_faults(self, yahoo15):
        """Same differential, with a mid-burst chiller outage active: the
        planner captures and restores injector-derated substrate too."""
        plan = FaultPlan.from_specs(["chiller@400s:duration=120"])
        mpc = simulate_strategy(
            yahoo15, _mpc(replan_interval_s=120.0), SMALL, fault_plan=plan
        )
        script = _ScriptedBoundStrategy(s.upper_bound for s in mpc.steps)
        control = simulate_strategy(yahoo15, script, SMALL, fault_plan=plan)
        assert_steps_identical(mpc.steps, control.steps)
        assert mpc.fault_events == control.fault_events
        assert mpc.aborted_at_s == control.aborted_at_s


class TestOracleEquivalence:
    """MPC with perfect forecast + covering horizon *is* the Oracle.

    ``violation_penalty_s=0`` in both tests: the Oracle search scores pure
    performance (failed candidates excluded), which the rollout mirrors
    with its ``-inf`` exclusion; a nonzero event penalty is an MPC-only
    refinement the Oracle has no counterpart for.
    """

    def test_matches_oracle_on_trivial_single_burst(self):
        """A short, mild burst the facility rides out at the chip maximum:
        the argmax is the endpoint and every candidate survives."""
        trace = burst_trace()
        strategy = _mpc(
            horizon_s=float(len(trace)), violation_penalty_s=0.0
        )
        mpc = simulate_strategy(trace, strategy, SMALL)
        oracle = oracle_for_trace(trace, SMALL, candidates=CANDIDATES)
        assert strategy.plan_log == ((60.0, oracle.upper_bound),)
        fixed = simulate_strategy(
            trace, FixedUpperBoundStrategy(oracle.upper_bound), SMALL
        )
        assert np.array_equal(mpc.served, fixed.served)
        assert mpc.average_performance == oracle.achieved_performance

    def test_matches_oracle_on_interior_optimum(self, yahoo15):
        """The 15-minute burst exhausts the reserves at high degrees, so
        the best constant bound is *interior* — the regime where Greedy
        over-sprints and hindsight actually matters."""
        strategy = _mpc(
            horizon_s=float(len(yahoo15)), violation_penalty_s=0.0
        )
        mpc = simulate_strategy(yahoo15, strategy, SMALL)
        oracle = oracle_for_trace(yahoo15, SMALL, candidates=CANDIDATES)
        assert CANDIDATES[0] < oracle.upper_bound < CANDIDATES[-1]
        assert strategy.plan_log == ((300.0, oracle.upper_bound),)
        fixed = simulate_strategy(
            yahoo15, FixedUpperBoundStrategy(oracle.upper_bound), SMALL
        )
        assert np.array_equal(mpc.served, fixed.served)
        assert mpc.average_performance == oracle.achieved_performance

    def test_default_candidate_grids_are_pinned_together(self):
        """The MPC default grid is restated in the core layer (which never
        imports the simulation layer); this pin keeps the two from
        drifting apart."""
        assert DEFAULT_MPC_CANDIDATES == DEFAULT_ORACLE_GRID


class TestPlanningBehaviour:
    def test_plans_once_per_burst_without_cadence(self, yahoo15):
        strategy = _mpc()
        simulate_strategy(yahoo15, strategy, SMALL)
        assert len(strategy.plan_log) == 1

    def test_replan_cadence_spacing(self, yahoo15):
        strategy = _mpc(replan_interval_s=120.0)
        simulate_strategy(yahoo15, strategy, SMALL)
        times = [t for t, _ in strategy.plan_log]
        assert len(times) > 1
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= 120.0 - 1e-9

    def test_unbound_strategy_degenerates_to_greedy(self):
        """Without a planner (no simulation entry point bound one), the
        strategy returns the chip maximum — Greedy, step for step."""
        trace = burst_trace()
        dc_mpc = build_datacenter(SMALL)
        dc_greedy = build_datacenter(SMALL)
        mpc_controller = dc_mpc.controller(_mpc())
        greedy_controller = dc_greedy.controller(GreedyStrategy())
        mpc_steps = [
            mpc_controller.step(float(d), float(i))
            for i, d in enumerate(trace.samples)
        ]
        greedy_steps = [
            greedy_controller.step(float(d), float(i))
            for i, d in enumerate(trace.samples)
        ]
        assert_steps_identical(mpc_steps, greedy_steps)

    def test_empty_forecast_commits_fallback_bound(self, yahoo15):
        """Planning past the trace end (nothing left to forecast) commits
        the admission-control-only bound."""
        dc = build_datacenter(SMALL)
        strategy = _mpc()
        controller = dc.controller(strategy)
        planner = bind_rollout_planner(strategy, dc, controller, yahoo15)
        obs = StrategyObservation(
            time_s=float(len(yahoo15)) + 10.0,
            demand=2.0,
            in_burst=True,
            time_in_burst_s=10.0,
            budget_fraction_remaining=1.0,
            max_degree=4.0,
            step_index=len(yahoo15) + 10,
        )
        assert planner.plan(obs) == FALLBACK_BOUND

    def test_last_scores_argmax_matches_committed_bound(self, yahoo15):
        dc = build_datacenter(SMALL)
        strategy = _mpc()
        controller = dc.controller(strategy)
        planner = bind_rollout_planner(strategy, dc, controller, yahoo15)
        for i in range(301):
            controller.step(float(yahoo15.samples[i]), float(i))
        assert strategy.plan_log
        bounds = [b for b, _ in planner.last_scores]
        scores = [s for _, s in planner.last_scores]
        assert bounds == list(CANDIDATES)
        committed = strategy.plan_log[-1][1]
        # Strict first-wins: the committed bound is the *first* maximum.
        assert committed == bounds[scores.index(max(scores))]

    def test_predicted_forecast_mode_completes(self, yahoo15):
        strategy = _mpc(
            forecast="predicted",
            predicted_burst_duration_s=yahoo15.over_capacity_time_s(),
        )
        result = simulate_strategy(yahoo15, strategy, SMALL)
        assert len(result.steps) == len(yahoo15)
        assert result.average_performance > 1.3


class TestForecastProviders:
    def _ctx(self, **overrides) -> PlanContext:
        kwargs = dict(
            start_index=0,
            time_s=0.0,
            demand=2.6,
            time_in_burst_s=0.0,
            horizon_steps=10,
            dt_s=1.0,
        )
        kwargs.update(overrides)
        return PlanContext(**kwargs)

    def test_perfect_forecast_replays_the_trace_slice(self):
        trace = burst_trace()
        forecast = PerfectForecast(trace)
        demands = forecast.horizon_demands(
            self._ctx(start_index=58, horizon_steps=4)
        )
        assert demands == (0.8, 0.8, 2.6, 2.6)

    def test_perfect_forecast_clamps_at_trace_end(self):
        trace = burst_trace(total_s=480)
        forecast = PerfectForecast(trace)
        demands = forecast.horizon_demands(
            self._ctx(start_index=475, horizon_steps=50)
        )
        assert len(demands) == 5

    def test_perfect_forecast_is_empty_past_the_end(self):
        trace = burst_trace(total_s=480)
        forecast = PerfectForecast(trace)
        assert forecast.horizon_demands(self._ctx(start_index=480)) == ()

    def test_predicted_forecast_holds_then_falls(self):
        forecast = PredictedBurstForecast(
            predicted_burst_duration_s=5.0, post_burst_demand=0.7
        )
        demands = forecast.horizon_demands(
            self._ctx(time_in_burst_s=2.0, horizon_steps=6)
        )
        assert demands == (2.6, 2.6, 2.6, 0.7, 0.7, 0.7)

    def test_build_forecast_dispatch(self, yahoo15):
        assert isinstance(
            build_forecast(_mpc(), yahoo15), PerfectForecast
        )
        predicted = build_forecast(
            _mpc(forecast="predicted", predicted_burst_duration_s=900.0),
            yahoo15,
        )
        assert isinstance(predicted, PredictedBurstForecast)
        assert predicted.predicted_burst_duration_s == 900.0

    def test_bind_is_a_no_op_for_other_strategies(self, yahoo15):
        dc = build_datacenter(SMALL)
        strategy = GreedyStrategy()
        controller = dc.controller(strategy)
        assert bind_rollout_planner(strategy, dc, controller, yahoo15) is None


class TestStepIndexAlignment:
    """The planner aligns forecasts with the trace via the controller's
    integer step index — never ``round(time_s / dt_s)``, which drifts for
    non-integer ``dt_s`` over long runs."""

    def test_plan_context_uses_observation_step_index(self, yahoo15):
        """The PerfectForecast slice follows obs.step_index even when it
        disagrees with round(time_s / dt_s) — pinning that the planner
        never re-derives the index from float time."""
        dc = build_datacenter(SMALL)
        strategy = _mpc(horizon_s=4.0)
        controller = dc.controller(strategy)
        planner = bind_rollout_planner(strategy, dc, controller, yahoo15)
        seen = {}
        forecast = planner._forecast

        class _Spy:
            def horizon_demands(self, ctx):
                seen["start_index"] = ctx.start_index
                return forecast.horizon_demands(ctx)

        planner._forecast = _Spy()
        obs = StrategyObservation(
            time_s=123.0,
            demand=2.0,
            in_burst=True,
            time_in_burst_s=1.0,
            budget_fraction_remaining=1.0,
            max_degree=4.0,
            step_index=77,  # deliberately != round(time_s / dt_s)
        )
        planner.plan(obs)
        assert seen["start_index"] == 77

    def test_long_run_with_non_integer_dt(self):
        """End-to-end regression with dt_s=0.3 over a long trace: the MPC
        run must plan from exactly aligned PerfectForecast slices and be
        bit-identical to replaying its committed bound schedule.  With the
        float-derived index, i * 0.3 / 0.3 drifts off the integer grid for
        large i and the forecast slice misaligns."""
        dt = 0.3
        n = 7000  # i * dt = 2099.7 s; plenty of accumulated float error
        values = np.full(n, 0.8)
        values[6000:6600] = 2.4  # late burst so planning happens at large i
        trace = Trace(values, dt, "long-dt03")
        config = SMALL.with_changes(dt_s=dt)
        strategy = _mpc(horizon_s=180.0, replan_interval_s=60.0)
        mpc = simulate_strategy(trace, strategy, config)
        assert strategy.plan_log  # the burst actually triggered planning

        bounds = [s.upper_bound for s in mpc.steps]

        class _IndexedScript(SprintingStrategy):
            name = "indexed-script"

            def degree_upper_bound(self, obs):
                return bounds[obs.step_index]

            def reset(self):
                pass

        control = simulate_strategy(trace, _IndexedScript(), config)
        assert_steps_identical(mpc.steps, control.steps)


class TestStrategyValidation:
    def test_rejects_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            MPCStrategy(candidate_bounds=())

    def test_rejects_unknown_forecast_mode(self):
        with pytest.raises(ConfigurationError, match="forecast"):
            MPCStrategy(forecast="psychic")

    def test_predicted_mode_requires_duration(self):
        with pytest.raises(ConfigurationError, match="predicted"):
            MPCStrategy(forecast="predicted")

    def test_restore_rejects_malformed_state(self):
        strategy = _mpc()
        with pytest.raises(ConfigurationError):
            strategy.restore_state(None)
        with pytest.raises(ConfigurationError):
            strategy.restore_state((1.0,))

    def test_snapshot_round_trips_the_episode_plan(self, yahoo15):
        strategy = _mpc(replan_interval_s=120.0)
        simulate_strategy(yahoo15, strategy, SMALL)
        state = strategy.snapshot_state()
        log = strategy.plan_log
        strategy.reset()
        assert strategy.plan_log == ()
        strategy.restore_state(state)
        assert strategy.snapshot_state() == state
        assert strategy.plan_log == log
