"""Tests for the cached ``SimulationResult.series`` accessors.

``series()`` used to rebuild its array on every call with a Python
``getattr`` walk; it now computes each attribute once per result and
returns the cached, read-only array.  Invalidation is by construction:
``steps`` never changes after the result exists, and a new run produces
a new result with an empty cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import simulate_strategy
from repro.simulation.metrics import SimulationResult
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


@pytest.fixture(scope="module")
def result():
    trace = Trace(
        np.concatenate([np.full(30, 0.8), np.full(60, 2.5), np.full(30, 0.7)]),
        name="cache-test",
    )
    return simulate_strategy(trace, GreedyStrategy(), SMALL)


class TestSeriesCache:
    def test_repeated_calls_return_the_same_array(self, result):
        first = result.series("degree")
        second = result.series("degree")
        assert first is second

    def test_cached_values_match_attribute_walk(self, result):
        for attribute in ("served", "demand", "degree", "it_power_w"):
            expected = np.array(
                [getattr(s, attribute) for s in result.steps], dtype=float
            )
            assert np.array_equal(result.series(attribute), expected)

    def test_cached_array_is_read_only(self, result):
        series = result.series("served")
        with pytest.raises(ValueError):
            series[0] = -1.0

    def test_plain_list_fallback(self, result):
        """A result built over a materialised step list still works."""
        clone = SimulationResult(
            trace=result.trace,
            strategy_name=result.strategy_name,
            steps=list(result.steps),
            energy_shares=result.energy_shares,
            time_in_phase_s=result.time_in_phase_s,
            dropped_integral=result.dropped_integral,
            served_integral=result.served_integral,
            demand_integral=result.demand_integral,
        )
        assert np.array_equal(clone.series("degree"), result.series("degree"))
        assert clone.series("degree") is clone.series("degree")

    def test_invalidation_by_construction(self, result):
        """A fresh run gets a fresh cache — results never share arrays."""
        other = simulate_strategy(result.trace, GreedyStrategy(), SMALL)
        assert other.series("degree") is not result.series("degree")
        assert np.array_equal(other.series("degree"), result.series("degree"))

    def test_aggregates_still_correct(self, result):
        assert result.peak_degree == float(result.series("degree").max())
        assert result.sprint_duration_s >= 0.0
        assert result.average_performance > 1.0
