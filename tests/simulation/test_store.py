"""Artifact store: manifest index, self-heal and garbage collection.

Time is always pinned (``gc`` takes ``now`` from the caller; mtimes are
set with ``os.utime``), so every eviction decision here is deterministic.
"""

from __future__ import annotations

import json
import os

from repro.simulation.store import ArtifactStore, ManifestEntry

VERSION = 3


def make_entry(store: ArtifactStore, key: str, mtime: float = None) -> int:
    """Store one valid payload; returns its size. Optionally backdate it."""
    store.store_payload(
        key,
        {
            "version": VERSION,
            "key": key,
            "status": "ok",
            "outcome": {"value": key},
        },
    )
    path = store.path_for(key)
    if mtime is not None:
        os.utime(path, times=(mtime, mtime))
    return path.stat().st_size


class TestEntryIO:
    def test_roundtrip_and_manifest_indexing(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        make_entry(store, "aaa")
        payload = store.load_payload("aaa")
        assert payload is not None and payload["status"] == "ok"
        assert store.has("aaa")
        entries = store.manifest_entries()
        assert [e.key for e in entries] == ["aaa"]
        count, total = store.stats()
        assert count == 1 and total > 0

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        make_entry(store, "aaa")
        newer = ArtifactStore(tmp_path, VERSION + 1)
        assert newer.load_payload("aaa") is None

    def test_key_mismatch_and_garbage_read_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        store.path_for("bbb").write_text(
            json.dumps({"version": VERSION, "key": "other", "status": "ok"})
        )
        store.path_for("ccc").write_text("torn{")
        assert store.load_payload("bbb") is None
        assert store.load_payload("ccc") is None


class TestManifestSelfHeal:
    def test_corrupt_manifest_line_warns_and_rebuilds(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path, VERSION)
        make_entry(store, "aaa")
        make_entry(store, "bbb")
        with open(store.manifest_path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')  # a torn concurrent append
        with caplog.at_level("WARNING", logger="repro.simulation.store"):
            entries = store.manifest_entries()
        assert sorted(e.key for e in entries) == ["aaa", "bbb"]
        assert any("rebuilding" in r.message for r in caplog.records)
        # The rebuild rewrote a clean manifest: the next read is silent.
        caplog.clear()
        with caplog.at_level("WARNING", logger="repro.simulation.store"):
            assert len(store.manifest_entries()) == 2
        assert not caplog.records

    def test_missing_manifest_rebuilds_silently(self, tmp_path, caplog):
        store = ArtifactStore(tmp_path, VERSION)
        make_entry(store, "aaa")
        os.unlink(store.manifest_path)
        with caplog.at_level("WARNING", logger="repro.simulation.store"):
            entries = store.manifest_entries()
        assert [e.key for e in entries] == ["aaa"]
        assert not caplog.records

    def test_rebuild_skips_invalid_entry_files(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        make_entry(store, "aaa")
        store.path_for("junk").write_text("not a payload")
        os.unlink(store.manifest_path)
        assert [e.key for e in store.manifest_entries()] == ["aaa"]


class TestGarbageCollection:
    def test_age_eviction_reports_reclaimed_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        now = 1_000_000.0
        old_size = make_entry(store, "old", mtime=now - 500.0)
        make_entry(store, "new", mtime=now - 10.0)
        report = store.gc(now=now, max_age_s=100.0)
        assert report.removed == 1
        assert report.removed_keys == ["old"]
        assert report.reclaimed_bytes == old_size
        assert report.kept == 1
        assert not store.path_for("old").exists()
        assert store.has("new")
        assert [e.key for e in store.manifest_entries()] == ["new"]

    def test_size_eviction_is_oldest_first(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        now = 1_000_000.0
        sizes = {
            key: make_entry(store, key, mtime=now - age)
            for key, age in (("a", 300.0), ("b", 200.0), ("c", 100.0))
        }
        budget = sizes["b"] + sizes["c"]
        report = store.gc(now=now, max_bytes=budget)
        assert report.removed_keys == ["a"]
        assert report.kept == 2
        assert report.kept_bytes == budget

    def test_dry_run_deletes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        now = 1_000_000.0
        make_entry(store, "old", mtime=now - 500.0)
        report = store.gc(now=now, max_age_s=100.0, dry_run=True)
        assert report.dry_run
        assert report.removed == 1
        assert store.has("old")
        assert [e.key for e in store.manifest_entries()] == ["old"]

    def test_no_bounds_keeps_everything(self, tmp_path):
        store = ArtifactStore(tmp_path, VERSION)
        make_entry(store, "aaa")
        report = store.gc(now=1_000_000.0)
        assert report.removed == 0 and report.kept == 1

    def test_entry_structures_are_value_types(self):
        assert ManifestEntry("k", "ok", 10) == ManifestEntry("k", "ok", 10)
