"""Tests for the persistent sweep pool and worker-side reuse.

The parallel runner keeps its process pool alive across batches and ships
each trace to the workers once (by content hash, via the pool
initializer) instead of pickling it into every task; workers cache one
facility per configuration and reset it between runs.  These tests pin
the two things that matter: the pool actually persists (and is rebuilt
exactly when a new trace must ship), and none of the reuse changes a
single result relative to the serial reference path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.batch import (
    StrategySpec,
    SweepRunner,
    SweepTask,
    _ShippedTask,
    _execute_shipped,
    _init_worker,
    _trace_content_key,
    execute_task,
)
from repro.simulation.config import DataCenterConfig
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=25)


def burst_trace(seed: int = 0, n: int = 90) -> Trace:
    rng = np.random.default_rng(seed)
    samples = 0.7 + 0.2 * rng.random(n)
    samples[30:60] += 1.8
    return Trace(samples, name=f"pool-{seed}")


class TestPoolPersistence:
    def test_pool_survives_across_batches(self):
        # vector_pack off: packable fixed-bound tasks would otherwise run
        # on the in-process kernel tier and never touch the pool.
        runner = SweepRunner(max_workers=2, vector_pack=False)
        trace = burst_trace()
        tasks = [
            SweepTask(trace, StrategySpec.fixed(bound), SMALL)
            for bound in (2.0, 3.0)
        ]
        try:
            runner.run_tasks(tasks)
            first_pool = runner._pool
            assert first_pool is not None
            runner.run_tasks(tasks)
            assert runner._pool is first_pool
        finally:
            runner.close()

    def test_pool_rebuilt_when_new_trace_appears(self):
        runner = SweepRunner(max_workers=2, vector_pack=False)
        spec_pair = [StrategySpec.fixed(2.0), StrategySpec.fixed(3.0)]
        try:
            runner.run_tasks(
                [SweepTask(burst_trace(0), s, SMALL) for s in spec_pair]
            )
            first_pool = runner._pool
            runner.run_tasks(
                [SweepTask(burst_trace(1), s, SMALL) for s in spec_pair]
            )
            assert runner._pool is not first_pool
        finally:
            runner.close()

    def test_close_is_idempotent_and_serial_runner_is_a_noop(self):
        serial = SweepRunner(max_workers=1)
        serial.close()
        serial.close()
        assert serial._pool is None

    def test_serial_path_never_builds_a_pool(self):
        runner = SweepRunner(max_workers=1)
        runner.run_tasks(
            [SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)]
        )
        assert runner._pool is None


class TestRunnerLifecycle:
    """`close()` latches the runner shut; further submissions are a
    programming error with a clear message, not a silent pool rebuild."""

    def test_double_close_is_idempotent(self):
        runner = SweepRunner(max_workers=1)
        runner.close()
        runner.close()
        assert runner._pool is None

    def test_submit_after_close_raises(self):
        from repro.errors import ConfigurationError

        runner = SweepRunner(max_workers=1)
        runner.run_tasks(
            [SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)]
        )
        runner.close()
        task = SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)
        with pytest.raises(ConfigurationError, match="closed"):
            runner.run_tasks([task])
        with pytest.raises(ConfigurationError, match="closed"):
            runner.oracle_search(burst_trace(), candidates=(2.0, 3.0))
        with pytest.raises(ConfigurationError, match="closed"):
            runner.build_upper_bound_table(
                burst_durations_min=(2.0,),
                burst_degrees=(3.0,),
                candidates=(2.0, 3.0),
                config=SMALL,
            )

    def test_context_manager_closes_on_exit(self):
        from repro.errors import ConfigurationError

        with SweepRunner(max_workers=1) as runner:
            results = runner.run_tasks(
                [SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)]
            )
            assert len(results) == 1
        with pytest.raises(ConfigurationError, match="closed"):
            runner.run_tasks(
                [SweepTask(burst_trace(), StrategySpec.greedy(), SMALL)]
            )

    def test_entering_a_closed_runner_raises(self):
        from repro.errors import ConfigurationError

        runner = SweepRunner(max_workers=1)
        runner.close()
        with pytest.raises(ConfigurationError, match="closed"):
            with runner:
                pass  # pragma: no cover - __enter__ must raise


class TestWorkerReuseCorrectness:
    def test_shipped_path_matches_reference_path(self):
        """The worker entry point (cached facility, shipped trace) must be
        element-wise identical to ``execute_task`` — including when the
        same facility is reused for a second, different run."""
        trace = burst_trace()
        key = _trace_content_key(trace)
        _init_worker(((key, trace),))
        for spec in (
            StrategySpec.greedy(),
            StrategySpec.fixed(2.5),
            StrategySpec.greedy(),  # reuses the now-warm facility
        ):
            shipped = _ShippedTask(key, spec, SMALL, None)
            reference = execute_task(SweepTask(trace, spec, SMALL))
            assert _execute_shipped(shipped) == reference

    def test_parallel_pool_results_match_serial(self):
        traces = [burst_trace(seed) for seed in range(3)]
        tasks = [
            SweepTask(trace, StrategySpec.fixed(bound), SMALL)
            for trace in traces
            for bound in (2.0, 3.0, 4.0)
        ]
        serial = SweepRunner(max_workers=1, vector_pack=False).run_tasks(
            tasks
        )
        parallel_runner = SweepRunner(max_workers=2, vector_pack=False)
        try:
            parallel = parallel_runner.run_tasks(tasks)
        finally:
            parallel_runner.close()
        assert parallel == serial

    def test_trace_content_key_separates_content(self):
        a = burst_trace(0)
        b = burst_trace(1)
        assert _trace_content_key(a) != _trace_content_key(b)
        same = Trace(a.samples.copy(), dt_s=a.dt_s, name=a.name)
        assert _trace_content_key(a) == _trace_content_key(same)
