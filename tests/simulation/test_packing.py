"""Vector-packed tier: bit-identity to the scalar path, pinned.

The packed tier's whole value rests on one claim: a task that runs
packed produces the *same object* the scalar engine produces — every
float bit-identical, every tie broken the same way.  The differential
tests here randomize grids of traces and bounds and compare
``vector_pack_tasks`` / ``packed_point_searches`` output against the
scalar reference with plain ``==`` (no tolerances anywhere).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.simulation import batch as batch_module
from repro.simulation import packing
from repro.simulation.batch import (
    RunFailure,
    StrategySpec,
    SweepTask,
    execute_task,
)
from repro.simulation.batch_facility import set_vector_oracle_enabled
from repro.simulation.config import DataCenterConfig
from repro.simulation.faults import FaultEvent, FaultPlan
from repro.simulation.packing import (
    packed_point_searches,
    task_packable,
    vector_pack_tasks,
)
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=25)


def bursty_trace(seed: int, n: int = 90) -> Trace:
    """Random trace with a guaranteed burst window (so no outcome field
    degenerates to NaN, which would defeat ``==`` comparison)."""
    rng = np.random.default_rng(seed)
    samples = 0.6 + 0.3 * rng.random(n)
    lo = int(rng.integers(10, n // 2))
    hi = lo + int(rng.integers(10, n - lo - 1))
    samples[lo:hi] += 1.2 + 1.4 * rng.random()
    return Trace(samples, name=f"pack-{seed}")


def scalar_reference(tasks):
    """The scalar engine's results, with every vector fast path off."""
    previous = set_vector_oracle_enabled(False)
    try:
        return [execute_task(task) for task in tasks]
    finally:
        set_vector_oracle_enabled(previous)


class TestPackability:
    def test_fixed_and_greedy_pack(self):
        trace = bursty_trace(0)
        assert task_packable(SweepTask(trace, StrategySpec.fixed(2.5), SMALL))
        assert task_packable(SweepTask(trace, StrategySpec.greedy(), SMALL))

    def test_faulted_mpc_and_mismatched_dt_do_not_pack(self):
        trace = bursty_trace(0)
        plan = FaultPlan((FaultEvent(kind="breaker", time_s=10.0),))
        assert not task_packable(
            SweepTask(trace, StrategySpec.fixed(2.5), SMALL, plan)
        )
        assert not task_packable(
            SweepTask(
                trace,
                StrategySpec.mpc(candidate_bounds=(2.0, 3.0)),
                SMALL,
            )
        )
        off_dt = Trace(trace.samples, dt_s=2.0, name="off-dt")
        assert not task_packable(
            SweepTask(off_dt, StrategySpec.fixed(2.5), SMALL)
        )


class TestRandomizedDifferential:
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_packed_grid_bit_identical_to_scalar(self, seed):
        """Random grid: mixed traces, random fixed bounds (with
        duplicates), greedy sprinkled in — packed == scalar, bit for bit.
        """
        rng = np.random.default_rng(seed)
        traces = [bursty_trace(100 * seed + i) for i in range(3)]
        tasks = []
        for trace in traces:
            for _ in range(3):
                bound = float(
                    rng.choice([2.0, 2.5, 3.0, 3.0, 3.5])  # dup: tie bait
                )
                tasks.append(SweepTask(trace, StrategySpec.fixed(bound), SMALL))
            tasks.append(SweepTask(trace, StrategySpec.greedy(), SMALL))
        packed = vector_pack_tasks(tasks)
        assert all(result is not None for result in packed)
        assert packed == scalar_reference(tasks)

    def test_greedy_equals_unbounded_fixed_semantics(self):
        """Greedy packs as bound=inf; its packed outcome must equal its
        scalar run, not merely a high fixed bound's."""
        trace = bursty_trace(7)
        tasks = [
            SweepTask(trace, StrategySpec.greedy(), SMALL),
            SweepTask(trace, StrategySpec.greedy(), SMALL),
        ]
        packed = vector_pack_tasks(tasks)
        reference = scalar_reference(tasks)
        assert packed == reference
        assert packed[0].strategy_name == "greedy"

    def test_unpackable_tasks_stay_none(self):
        trace = bursty_trace(9)
        tasks = [
            SweepTask(trace, StrategySpec.fixed(2.0), SMALL),
            SweepTask(
                trace, StrategySpec.mpc(candidate_bounds=(2.0, 3.0)), SMALL
            ),
            SweepTask(trace, StrategySpec.fixed(3.0), SMALL),
        ]
        packed = vector_pack_tasks(tasks)
        assert packed[1] is None
        assert packed[0] is not None and packed[2] is not None

    def test_lone_task_is_not_packed(self):
        """A group narrower than MIN_PACK_WIDTH gains nothing; it stays
        on the scalar path."""
        tasks = [SweepTask(bursty_trace(11), StrategySpec.fixed(2.0), SMALL)]
        assert vector_pack_tasks(tasks) == [None]

    def test_toggle_off_disables_packing(self):
        trace = bursty_trace(12)
        tasks = [
            SweepTask(trace, StrategySpec.fixed(b), SMALL) for b in (2.0, 3.0)
        ]
        previous = set_vector_oracle_enabled(False)
        try:
            assert vector_pack_tasks(tasks) == [None, None]
        finally:
            set_vector_oracle_enabled(previous)


class TestPackedPointSearches:
    CANDIDATES = (2.0, 2.5, 3.0, 3.0, 3.5)  # duplicate: tie-break bait

    def scalar_searches(self, traces):
        previous = set_vector_oracle_enabled(False)
        try:
            return [
                batch_module._oracle_point_search(
                    trace, self.CANDIDATES, SMALL
                )
                for trace in traces
            ]
        finally:
            set_vector_oracle_enabled(previous)

    def test_fused_table_search_matches_reference(self):
        traces = [bursty_trace(20 + i) for i in range(4)]
        packed = packed_point_searches(traces, self.CANDIDATES, SMALL)
        assert packed is not None
        assert packed == self.scalar_searches(traces)

    def test_mixed_lengths_group_separately_and_still_match(self):
        traces = [
            bursty_trace(30, n=90),
            bursty_trace(31, n=120),
            bursty_trace(32, n=90),
            bursty_trace(33, n=120),
        ]
        packed = packed_point_searches(traces, self.CANDIDATES, SMALL)
        assert packed is not None
        assert packed == self.scalar_searches(traces)

    def test_declines_outside_envelope(self):
        traces = [bursty_trace(40), bursty_trace(41)]
        assert packed_point_searches(traces, (), SMALL) is None
        assert packed_point_searches(traces, (2.0, -1.0), SMALL) is None
        assert packed_point_searches(traces[:1], (2.0,), SMALL) is None
        off_dt = Trace(traces[0].samples, dt_s=2.0, name="off")
        assert (
            packed_point_searches([traces[0], off_dt], (2.0,), SMALL) is None
        )
        previous = set_vector_oracle_enabled(False)
        try:
            assert (
                packed_point_searches(traces, self.CANDIDATES, SMALL) is None
            )
        finally:
            set_vector_oracle_enabled(previous)


class _StubKernel:
    """Kernel double whose elements have all failed."""

    def __init__(self, n_steps: int, width: int) -> None:
        self.failed = np.ones(width, dtype=bool)
        self.telemetry = {
            "degree": [np.ones(width)] * n_steps,
            "room_temperature_c": [np.full(width, 25.0)] * n_steps,
        }


class TestFailureLatching:
    def test_failed_elements_rerun_on_the_scalar_engine(self, monkeypatch):
        """A packed element the kernel latches as failed must come back as
        the *scalar* engine's RunFailure — exact type, message, timestamp —
        via a scalar re-run, never as a reduced outcome.

        (Under unmutated physics the safety monitor prevents failures, so
        the kernel is stubbed to report every element failed.)
        """
        trace = bursty_trace(50)
        tasks = [
            SweepTask(trace, StrategySpec.fixed(b), SMALL) for b in (2.0, 3.0)
        ]
        sentinel = {
            task.cache_key(): RunFailure(
                "fixed", "BreakerTrippedError", "injected", float(i)
            )
            for i, task in enumerate(tasks)
        }

        class _StubFacility:
            def run_demand_matrix(self, demand, dt_s, bounds, **kwargs):
                served = np.zeros_like(np.asarray(demand, dtype=np.float64))
                return served, _StubKernel(served.shape[0], served.shape[1])

        monkeypatch.setattr(
            packing, "_batch_facility_for", lambda config: _StubFacility()
        )
        monkeypatch.setattr(
            batch_module,
            "execute_task",
            lambda task: sentinel[task.cache_key()],
        )
        packed = vector_pack_tasks(tasks)
        assert packed == [sentinel[t.cache_key()] for t in tasks]
