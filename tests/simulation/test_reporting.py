"""Tests for the one-shot reproduction report."""

from __future__ import annotations

import pytest

from repro.simulation.reporting import (
    ReportLine,
    collect_report_lines,
    render_report,
    write_report,
)


@pytest.fixture(scope="module")
def lines():
    return collect_report_lines()


class TestCollect:
    def test_all_headline_checks_hold(self, lines):
        """The packaged calibration passes its own report."""
        failing = [line for line in lines if not line.holds]
        assert failing == []

    def test_covers_the_headline_experiments(self, lines):
        experiments = {line.experiment for line in lines}
        for needed in ("Fig. 8a", "Fig. 8b", "Fig. 9", "Fig. 11b",
                       "Fig. 5a", "Headline", "Sec. V-D"):
            assert needed in experiments


class TestRender:
    def test_markdown_table(self, lines):
        text = render_report(lines)
        assert text.startswith("# Data Center Sprinting")
        assert "| experiment |" in text
        assert f"{len(lines)}/{len(lines)} headline checks hold" in text

    def test_failures_are_flagged(self):
        bad = [ReportLine("X", "q", "p", "m", False)]
        text = render_report(bad)
        assert "0/1" in text
        assert "| NO |" in text


class TestWrite:
    def test_write_report(self, tmp_path, lines):
        # Reuse the collected lines via render to keep the test fast; the
        # full write path is exercised once.
        path = write_report(tmp_path / "report.md")
        content = path.read_text()
        assert "reproduction report" in content
        assert "Fig. 11b" in content
