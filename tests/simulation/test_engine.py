"""Tests for the simulation engine, Oracle search and the bound table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import FixedUpperBoundStrategy, GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import (
    build_upper_bound_table,
    evaluate_upper_bound,
    oracle_for_trace,
    run_simulation,
    simulate_strategy,
)
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def burst_trace(level=2.2, burst_s=300, total_s=600):
    values = [0.8] * 60 + [level] * burst_s
    values += [0.8] * (total_s - len(values))
    return Trace(np.asarray(values), 1.0, "burst")


class TestRunSimulation:
    def test_back_to_back_runs_are_independent(self, small_datacenter):
        trace = burst_trace()
        first = run_simulation(small_datacenter, trace, GreedyStrategy())
        second = run_simulation(small_datacenter, trace, GreedyStrategy())
        assert first.served.tolist() == second.served.tolist()

    def test_simulate_strategy_builds_fresh_facility(self):
        trace = burst_trace()
        a = simulate_strategy(trace, GreedyStrategy(), SMALL)
        b = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert a.average_performance == pytest.approx(b.average_performance)

    def test_strategy_name_recorded(self):
        result = simulate_strategy(burst_trace(), GreedyStrategy(), SMALL)
        assert result.strategy_name == "greedy"

    def test_trace_dt_must_match_controller_step(self):
        """A coarser trace on a 1-second controller would silently distort
        the breaker thermal integration: the engine refuses it."""
        from repro.errors import ConfigurationError

        coarse = burst_trace().resampled(5.0)
        with pytest.raises(ConfigurationError, match="sampling period"):
            simulate_strategy(coarse, GreedyStrategy(), SMALL)

    def test_dt_mismatch_message_names_both_periods(self):
        """The error message quotes both the trace period and the
        controller step, and says how to reconcile them — that is what
        makes the failure actionable."""
        from repro.errors import ConfigurationError

        coarse = burst_trace().resampled(5.0)
        with pytest.raises(ConfigurationError) as excinfo:
            simulate_strategy(coarse, GreedyStrategy(), SMALL)
        message = str(excinfo.value)
        assert "5 s" in message
        assert "1 s" in message
        assert "resample" in message

    def test_configuration_error_importable_at_module_level(self):
        """The dt-mismatch guard must not rely on a function-local import:
        the exception class is part of the engine module's namespace."""
        import repro.simulation.engine as engine_module
        from repro.errors import ConfigurationError

        assert engine_module.ConfigurationError is ConfigurationError

    def test_coarse_trace_runs_with_matching_config(self):
        coarse = burst_trace().resampled(5.0)
        config = DataCenterConfig(n_pdus=2, servers_per_pdu=50, dt_s=5.0)
        result = simulate_strategy(coarse, GreedyStrategy(), config)
        assert result.average_performance > 1.0

    def test_integration_step_invariance(self):
        """The physics integrate consistently across step sizes: a 5 s
        controller on the resampled trace lands within a few percent of
        the 1 s reference."""
        trace = burst_trace(level=2.6, burst_s=600, total_s=900)
        fine = simulate_strategy(trace, GreedyStrategy(), SMALL)
        coarse_config = DataCenterConfig(
            n_pdus=2, servers_per_pdu=50, dt_s=5.0
        )
        coarse = simulate_strategy(
            trace.resampled(5.0), GreedyStrategy(), coarse_config
        )
        assert coarse.average_performance == pytest.approx(
            fine.average_performance, rel=0.05
        )


class TestOracleSearch:
    def test_oracle_at_least_as_good_as_greedy(self):
        """The Oracle dominates by construction whenever the candidate set
        includes the unconstrained bound."""
        trace = burst_trace(level=3.0, burst_s=900, total_s=1100)
        oracle = oracle_for_trace(trace, SMALL, candidates=(2.0, 3.0, 4.0))
        greedy = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert oracle.achieved_performance >= (
            greedy.average_performance - 1e-9
        )

    def test_long_burst_prefers_interior_bound(self):
        """Section V-A's thesis: constrained degree wins on long bursts."""
        trace = burst_trace(level=3.0, burst_s=900, total_s=1100)
        oracle = oracle_for_trace(trace, SMALL, candidates=(2.0, 2.5, 3.0, 4.0))
        assert oracle.upper_bound < 4.0

    def test_short_burst_is_unconstrained(self):
        """Fig. 10a: Greedy equals Oracle when energy is not exhausted."""
        trace = burst_trace(level=3.0, burst_s=120, total_s=400)
        oracle = oracle_for_trace(trace, SMALL, candidates=(2.0, 3.0, 4.0))
        greedy = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert oracle.achieved_performance == pytest.approx(
            greedy.average_performance, rel=1e-6
        )

    def test_evaluate_upper_bound_matches_fixed_strategy(self):
        trace = burst_trace()
        direct = simulate_strategy(trace, FixedUpperBoundStrategy(2.5), SMALL)
        assert evaluate_upper_bound(trace, 2.5, SMALL) == pytest.approx(
            direct.average_performance
        )


class TestEngineRunnerDelegation:
    def test_explicit_runner_is_used(self, tmp_path):
        """Passing a caching runner through the engine wrappers hits the
        cache on the second call."""
        from repro.simulation.batch import SweepRunner

        trace = burst_trace()
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        first = oracle_for_trace(
            trace, SMALL, candidates=(2.0, 3.0), runner=runner
        )
        # A whole Oracle search caches as one entry (not one per
        # candidate): a cold search is one miss, a warm one one hit.
        assert runner.misses == 1 and runner.hits == 0
        second = oracle_for_trace(
            trace, SMALL, candidates=(2.0, 3.0), runner=runner
        )
        assert runner.hits == 1
        assert first.upper_bound == second.upper_bound
        assert first.achieved_performance == second.achieved_performance


class TestUpperBoundTable:
    def test_build_small_table(self):
        table = build_upper_bound_table(
            config=SMALL,
            burst_durations_min=(2.0, 10.0),
            burst_degrees=(3.0,),
            candidates=(2.0, 3.0, 4.0),
            trace_factory=lambda degree, dur: burst_trace(
                level=degree, burst_s=int(dur * 60), total_s=int(dur * 60) + 300
            ),
        )
        assert len(table) == 2
        short = table.lookup(120.0, 3.0)
        long = table.lookup(600.0, 3.0)
        assert short >= long
