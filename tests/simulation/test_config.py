"""Tests for the Section VI-A configuration object."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import DEFAULT_CONFIG, DataCenterConfig


class TestPaperDefaults:
    def test_fleet_of_180k_servers(self):
        assert DEFAULT_CONFIG.n_servers == 180_000

    def test_peak_normal_server_power_55w(self):
        assert DEFAULT_CONFIG.peak_normal_server_power_w == pytest.approx(55.0)

    def test_peak_normal_it_power_near_10mw(self):
        assert DEFAULT_CONFIG.peak_normal_it_power_w == pytest.approx(9.9e6)

    def test_pue(self):
        assert DEFAULT_CONFIG.pue == pytest.approx(1.53)

    def test_default_headroom_10_percent(self):
        assert DEFAULT_CONFIG.dc_headroom_fraction == pytest.approx(0.10)

    def test_max_sprinting_degree_four(self):
        assert DEFAULT_CONFIG.max_sprinting_degree == pytest.approx(4.0)

    def test_ups_half_amp_hour(self):
        assert DEFAULT_CONFIG.ups_capacity_ah == pytest.approx(0.5)

    def test_tes_twelve_minutes(self):
        assert DEFAULT_CONFIG.tes_runtime_min == pytest.approx(12.0)

    def test_one_minute_reserve(self):
        assert DEFAULT_CONFIG.reserve_trip_time_s == pytest.approx(60.0)


class TestConfigMechanics:
    def test_with_changes(self):
        swept = DEFAULT_CONFIG.with_changes(dc_headroom_fraction=0.2)
        assert swept.dc_headroom_fraction == pytest.approx(0.2)
        assert swept.pue == DEFAULT_CONFIG.pue

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.pue = 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DataCenterConfig(n_pdus=0)
        with pytest.raises(ConfigurationError):
            DataCenterConfig(normal_cores=0)
        with pytest.raises(ConfigurationError):
            DataCenterConfig(normal_cores=49)
        with pytest.raises(ConfigurationError):
            DataCenterConfig(pue=0.9)
        with pytest.raises(ConfigurationError):
            DataCenterConfig(chiller_margin=0.8)
        with pytest.raises(ConfigurationError):
            DataCenterConfig(throughput_max_capacity=1.0)
        with pytest.raises(ConfigurationError):
            DataCenterConfig(dt_s=0.0)
