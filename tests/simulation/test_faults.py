"""Tests for the fault-injection subsystem (plans, parsing, injection)."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import (
    BatteryDepletedError,
    BreakerTrippedError,
    ConfigurationError,
    TankDepletedError,
    ThermalEmergencyError,
)
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.faults import (
    FAULT_KIND_ALIASES,
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    RECOVERABLE_FAULT_ERRORS,
    canonical_fault_kind,
)

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def small_dc():
    return build_datacenter(SMALL)


class TestFaultEventParse:
    def test_minimal_spec(self):
        event = FaultEvent.parse("breaker@120s")
        assert event.kind == "breaker_trip"
        assert event.time_s == 120.0
        assert event.fraction == 1.0
        assert math.isinf(event.duration_s)
        assert event.target == "pdu"

    def test_time_without_unit_suffix(self):
        assert FaultEvent.parse("chiller@300").time_s == 300.0

    def test_full_parameter_list(self):
        event = FaultEvent.parse(
            "derate@60s:fraction=0.25,duration=120,target=dc"
        )
        assert event.kind == "breaker_derate"
        assert event.fraction == pytest.approx(0.25)
        assert event.duration_s == pytest.approx(120.0)
        assert event.target == "dc"

    def test_duration_s_key_accepted(self):
        assert FaultEvent.parse("gap@10s:duration_s=30").duration_s == 30.0

    @pytest.mark.parametrize("alias,canonical", sorted(FAULT_KIND_ALIASES.items()))
    def test_every_alias_resolves(self, alias, canonical):
        assert FaultEvent.parse(f"{alias}@5s").kind == canonical
        assert canonical_fault_kind(alias) == canonical

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_canonical_kinds_pass_through(self, kind):
        assert canonical_fault_kind(kind) == kind

    @pytest.mark.parametrize(
        "spec",
        [
            "breaker",                      # no @TIME
            "@120s",                        # no kind
            "breaker@",                     # no time
            "breaker@soon",                 # non-numeric time
            "warp@120s",                    # unknown kind
            "breaker@120s:fraction",        # parameter without =
            "breaker@120s:fraction=lots",   # non-numeric fraction
            "breaker@120s:colour=red",      # unknown parameter
            "breaker@120s:fraction=0.0",    # fraction out of (0, 1]
            "breaker@120s:fraction=1.5",
            "gap@120s:duration=0",          # non-positive duration
            "breaker@120s:target=rack",     # unknown target
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            FaultEvent.parse(spec)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(kind="breaker_trip", time_s=-1.0)


class TestFaultEventSerialisation:
    def test_round_trip_preserves_fields(self):
        event = FaultEvent.parse("chiller@300s:fraction=0.5,duration=120")
        assert FaultEvent.from_dict(event.to_dict()) == event

    def test_infinite_duration_maps_to_null(self):
        data = FaultEvent.parse("breaker@120s").to_dict()
        assert data["duration_s"] is None
        assert json.loads(json.dumps(data)) == data
        assert math.isinf(FaultEvent.from_dict(data).duration_s)

    def test_from_dict_requires_kind_and_time(self):
        with pytest.raises(ConfigurationError):
            FaultEvent.from_dict({"kind": "breaker_trip"})
        with pytest.raises(ConfigurationError):
            FaultEvent.from_dict({"time_s": 10.0})

    def test_record_round_trip(self):
        record = FaultRecord(12.0, "chiller_outage", "capacity halved")
        assert FaultRecord.from_dict(record.to_dict()) == record


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan.from_specs(["chiller@300s", "breaker@120s"])
        assert [e.time_s for e in plan] == [120.0, 300.0]

    def test_len_and_bool(self):
        assert len(FaultPlan()) == 0
        assert not FaultPlan()
        assert FaultPlan.from_specs(["ups@5s"])

    def test_json_round_trip(self):
        plan = FaultPlan.from_specs(
            ["breaker@120s:fraction=0.5", "gap@10s:duration=30"]
        )
        assert FaultPlan.from_json(json.dumps(plan.to_dict())) == plan

    def test_load_from_file(self, tmp_path):
        plan = FaultPlan.from_specs(["chiller@60s:duration=120"])
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.load(str(path)) == plan

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("not json")

    def test_missing_events_key_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"faults": []})

    def test_canonical_is_deterministic(self):
        a = FaultPlan.from_specs(["chiller@300s", "breaker@120s"])
        b = FaultPlan.from_specs(["breaker@120s", "chiller@300s"])
        assert a.canonical() == b.canonical()


class TestFaultInjector:
    def test_events_apply_once_at_due_time(self):
        dc = small_dc()
        injector = FaultInjector(FaultPlan.from_specs(["chiller@10s"]), dc)
        assert injector.apply_due(0.0) == []
        applied = injector.apply_due(10.0)
        assert [r.kind for r in applied] == ["chiller_outage"]
        assert dc.cooling.chiller.rated_removal_w == 0.0
        assert injector.apply_due(11.0) == []
        injector.restore_substrate()

    def test_finite_duration_fault_restores_on_expiry(self):
        dc = small_dc()
        original_w = dc.cooling.chiller.rated_removal_w
        injector = FaultInjector(
            FaultPlan.from_specs(["chiller@10s:duration=5"]), dc
        )
        injector.apply_due(10.0)
        assert dc.cooling.chiller.rated_removal_w == 0.0
        restored = injector.apply_due(15.0)
        assert [r.kind for r in restored] == ["chiller_outage:restored"]
        assert dc.cooling.chiller.rated_removal_w == pytest.approx(original_w)

    def test_restore_substrate_undoes_every_rating_mutation(self):
        dc = small_dc()
        chiller_w = dc.cooling.chiller.rated_removal_w
        tes_w = dc.cooling.tes.max_discharge_w
        breaker_w = dc.topology.pdu.breaker.rated_power_w
        battery = dc.topology.pdu.ups.battery
        battery_ah = battery.capacity_ah
        battery_rate_w = battery.max_discharge_power_w
        injector = FaultInjector(
            FaultPlan.from_specs(
                ["chiller@1s", "tes@1s", "derate@1s:fraction=0.5", "ups@1s"]
            ),
            dc,
        )
        injector.apply_due(1.0)
        assert dc.cooling.chiller.rated_removal_w != chiller_w
        assert dc.cooling.tes.max_discharge_w != tes_w
        assert dc.topology.pdu.breaker.rated_power_w != breaker_w
        assert battery.capacity_ah != battery_ah
        injector.restore_substrate()
        assert dc.cooling.chiller.rated_removal_w == pytest.approx(chiller_w)
        assert dc.cooling.tes.max_discharge_w == pytest.approx(tes_w)
        assert dc.topology.pdu.breaker.rated_power_w == pytest.approx(breaker_w)
        assert battery.capacity_ah == pytest.approx(battery_ah)
        assert battery.max_discharge_power_w == pytest.approx(battery_rate_w)

    def test_trace_gap_holds_last_good_demand(self):
        dc = small_dc()
        injector = FaultInjector(
            FaultPlan.from_specs(["gap@10s:duration=3"]), dc
        )
        assert injector.effective_demand(1.5, 9.0) == 1.5
        injector.apply_due(10.0)
        # Inside the gap the last pre-gap sample is held.
        assert injector.effective_demand(9.9, 10.0) == 1.5
        assert injector.effective_demand(0.1, 12.0) == 1.5
        # The gap is half-open: the sample at start + duration passes.
        assert injector.effective_demand(2.5, 13.0) == 2.5

    def test_forced_pdu_trip_flags_degradation(self):
        dc = small_dc()
        injector = FaultInjector(
            FaultPlan.from_specs(["breaker@10s:fraction=0.25"]), dc
        )
        injector.apply_due(10.0)
        assert dc.topology.pdu.breaker.tripped
        degradation = injector.take_degradation()
        assert degradation is not None
        surviving, reason = degradation
        assert surviving == pytest.approx(0.75)
        assert "forced trip" in reason
        # The pending degradation is consumed exactly once.
        assert injector.take_degradation() is None

    def test_forced_dc_trip_leaves_nothing(self):
        dc = small_dc()
        injector = FaultInjector(
            FaultPlan.from_specs(["breaker@10s:target=dc"]), dc
        )
        injector.apply_due(10.0)
        assert dc.topology.dc_breaker.tripped
        surviving, _ = injector.take_degradation()
        assert surviving == 0.0

    def test_ups_failure_scales_fleet_energy(self):
        dc = small_dc()
        battery = dc.topology.pdu.ups.battery
        original_j = battery.energy_j
        injector = FaultInjector(
            FaultPlan.from_specs(["ups@10s:fraction=0.5"]), dc
        )
        injector.apply_due(10.0)
        assert battery.energy_j == pytest.approx(0.5 * original_j)
        assert battery.max_discharge_power_w == pytest.approx(165.0)
        injector.restore_substrate()


class TestSurvivingCapacity:
    def test_thermal_emergency_kills_everything(self):
        injector = FaultInjector(FaultPlan(), small_dc())
        error = ThermalEmergencyError(40.0, 35.0)
        assert injector.surviving_capacity_for(error) == 0.0

    def test_dc_breaker_trip_kills_everything(self):
        dc = small_dc()
        injector = FaultInjector(FaultPlan(), dc)
        error = BreakerTrippedError(dc.topology.dc_breaker.name, time_s=10.0)
        assert injector.surviving_capacity_for(error) == 0.0

    def test_natural_pdu_trip_kills_everything(self):
        # Every PDU is identical, so an organic trip of the representative
        # breaker means all of them tripped.
        dc = small_dc()
        injector = FaultInjector(FaultPlan(), dc)
        error = BreakerTrippedError(dc.topology.pdu.breaker.name, time_s=10.0)
        assert injector.surviving_capacity_for(error) == 0.0

    def test_forced_pdu_trip_leaves_complement(self):
        dc = small_dc()
        injector = FaultInjector(
            FaultPlan.from_specs(["breaker@10s:fraction=0.3"]), dc
        )
        injector.apply_due(10.0)
        error = BreakerTrippedError(dc.topology.pdu.breaker.name, time_s=10.0)
        assert injector.surviving_capacity_for(error) == pytest.approx(0.7)

    def test_storage_depletion_keeps_normal_capacity(self):
        injector = FaultInjector(FaultPlan(), small_dc())
        assert injector.surviving_capacity_for(BatteryDepletedError()) == 1.0
        assert injector.surviving_capacity_for(TankDepletedError()) == 1.0

    def test_recoverable_errors_tuple_excludes_configuration_error(self):
        assert ConfigurationError not in RECOVERABLE_FAULT_ERRORS
        assert BreakerTrippedError in RECOVERABLE_FAULT_ERRORS
        assert ThermalEmergencyError in RECOVERABLE_FAULT_ERRORS
