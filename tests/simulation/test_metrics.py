"""Tests for performance metrics and the result container."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.simulation.engine import run_simulation
from repro.simulation.faults import FaultPlan
from repro.simulation.metrics import (
    SimulationResult,
    average_performance_improvement,
    baseline_served,
)
from repro.workloads.traces import Trace


def make_trace(values):
    return Trace(np.asarray(values, dtype=float), 1.0, "t")


class TestBaseline:
    def test_baseline_caps_at_one(self):
        trace = make_trace([0.5, 1.5, 3.0])
        assert baseline_served(trace).tolist() == [0.5, 1.0, 1.0]


class TestAveragePerformance:
    def test_no_sprinting_equals_one(self):
        trace = make_trace([0.5, 1.5, 2.0])
        served = [0.5, 1.0, 1.0]
        assert average_performance_improvement(served, trace) == (
            pytest.approx(1.0)
        )

    def test_burst_window_restriction(self):
        """Only over-capacity samples count in the paper's metric."""
        trace = make_trace([0.5, 2.0, 2.0])
        served = [0.5, 2.0, 1.0]
        # Burst samples served (2.0 + 1.0)/2 against baseline 1.0.
        assert average_performance_improvement(served, trace) == (
            pytest.approx(1.5)
        )

    def test_whole_trace_metric(self):
        trace = make_trace([0.5, 2.0])
        served = [0.5, 2.0]
        value = average_performance_improvement(
            served, trace, burst_window_only=False
        )
        assert value == pytest.approx(2.5 / 1.5)

    def test_trace_without_bursts_returns_one(self):
        trace = make_trace([0.5, 0.8])
        assert average_performance_improvement([0.5, 0.8], trace) == 1.0

    def test_length_mismatch_rejected(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            average_performance_improvement([1.0], trace)


class TestSimulationResult:
    @pytest.fixture()
    def result(self, small_datacenter):
        trace = make_trace([0.8] * 30 + [2.2] * 120 + [0.8] * 30)
        return run_simulation(small_datacenter, trace, GreedyStrategy())

    def test_series_lengths(self, result):
        assert len(result.served) == len(result.trace)
        assert len(result.degrees) == len(result.trace)

    def test_average_performance_above_one(self, result):
        assert result.average_performance > 1.0

    def test_overall_performance_differs_from_burst_metric(self, result):
        assert result.overall_performance != result.average_performance

    def test_peak_degree(self, result):
        assert result.peak_degree > 1.0

    def test_sprint_duration_positive(self, result):
        assert 0.0 < result.sprint_duration_s <= 120.0 + 1.0

    def test_drop_fraction_in_range(self, result):
        assert 0.0 <= result.drop_fraction < 1.0

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in (
            "average_performance",
            "drop_fraction",
            "peak_degree",
            "sprint_duration_s",
            "ups_energy_share",
            "tes_energy_share",
            "cb_energy_share",
            "peak_room_temperature_c",
        ):
            assert key in summary

    def test_served_never_exceeds_demand(self, result):
        assert (result.served <= result.demand + 1e-9).all()


class TestEmptyResult:
    """Peak statistics of a run with no steps are explicit NaN, not a crash.

    Regression tests for ``peak_degree`` / ``peak_room_temperature_c``
    raising on empty arrays (``max()`` of a zero-length ndarray).
    """

    def empty(self):
        return SimulationResult(
            trace=make_trace([1.0]),
            strategy_name="greedy",
            steps=[],
            energy_shares={},
            time_in_phase_s={},
            dropped_integral=0.0,
            served_integral=0.0,
            demand_integral=0.0,
        )

    def test_peak_degree_is_nan(self):
        assert math.isnan(self.empty().peak_degree)

    def test_peak_room_temperature_is_nan(self):
        assert math.isnan(self.empty().peak_room_temperature_c)

    def test_sprint_duration_is_zero(self):
        assert self.empty().sprint_duration_s == 0.0


class TestFaultTelemetry:
    @pytest.fixture()
    def result(self, small_datacenter):
        trace = make_trace([0.8] * 30 + [2.2] * 120 + [0.8] * 30)
        return run_simulation(small_datacenter, trace, GreedyStrategy())

    def test_clean_run_has_no_fault_telemetry(self, result):
        assert result.fault_events == []
        assert result.aborted_at_s is None
        assert not result.degraded

    def test_summary_reports_fault_fields(self, result):
        summary = result.summary()
        assert summary["n_fault_events"] == 0.0
        assert math.isnan(summary["aborted_at_s"])

    def test_degraded_run_summary(self, small_datacenter):
        trace = make_trace([0.8] * 30 + [2.2] * 120 + [0.8] * 30)
        plan = FaultPlan.from_specs(["breaker@50s:fraction=0.5"])
        result = run_simulation(
            small_datacenter, trace, GreedyStrategy(), fault_plan=plan
        )
        assert result.degraded
        summary = result.summary()
        assert summary["aborted_at_s"] == pytest.approx(50.0)
        assert summary["n_fault_events"] >= 2.0
