"""Tests for performance metrics and the result container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.simulation.engine import run_simulation
from repro.simulation.metrics import (
    average_performance_improvement,
    baseline_served,
)
from repro.workloads.traces import Trace


def make_trace(values):
    return Trace(np.asarray(values, dtype=float), 1.0, "t")


class TestBaseline:
    def test_baseline_caps_at_one(self):
        trace = make_trace([0.5, 1.5, 3.0])
        assert baseline_served(trace).tolist() == [0.5, 1.0, 1.0]


class TestAveragePerformance:
    def test_no_sprinting_equals_one(self):
        trace = make_trace([0.5, 1.5, 2.0])
        served = [0.5, 1.0, 1.0]
        assert average_performance_improvement(served, trace) == (
            pytest.approx(1.0)
        )

    def test_burst_window_restriction(self):
        """Only over-capacity samples count in the paper's metric."""
        trace = make_trace([0.5, 2.0, 2.0])
        served = [0.5, 2.0, 1.0]
        # Burst samples served (2.0 + 1.0)/2 against baseline 1.0.
        assert average_performance_improvement(served, trace) == (
            pytest.approx(1.5)
        )

    def test_whole_trace_metric(self):
        trace = make_trace([0.5, 2.0])
        served = [0.5, 2.0]
        value = average_performance_improvement(
            served, trace, burst_window_only=False
        )
        assert value == pytest.approx(2.5 / 1.5)

    def test_trace_without_bursts_returns_one(self):
        trace = make_trace([0.5, 0.8])
        assert average_performance_improvement([0.5, 0.8], trace) == 1.0

    def test_length_mismatch_rejected(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            average_performance_improvement([1.0], trace)


class TestSimulationResult:
    @pytest.fixture()
    def result(self, small_datacenter):
        trace = make_trace([0.8] * 30 + [2.2] * 120 + [0.8] * 30)
        return run_simulation(small_datacenter, trace, GreedyStrategy())

    def test_series_lengths(self, result):
        assert len(result.served) == len(result.trace)
        assert len(result.degrees) == len(result.trace)

    def test_average_performance_above_one(self, result):
        assert result.average_performance > 1.0

    def test_overall_performance_differs_from_burst_metric(self, result):
        assert result.overall_performance != result.average_performance

    def test_peak_degree(self, result):
        assert result.peak_degree > 1.0

    def test_sprint_duration_positive(self, result):
        assert 0.0 < result.sprint_duration_s <= 120.0 + 1.0

    def test_drop_fraction_in_range(self, result):
        assert 0.0 <= result.drop_fraction < 1.0

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in (
            "average_performance",
            "drop_fraction",
            "peak_degree",
            "sprint_duration_s",
            "ups_energy_share",
            "tes_energy_share",
            "cb_energy_share",
            "peak_room_temperature_c",
        ):
            assert key in summary

    def test_served_never_exceeds_demand(self, result):
        assert (result.served <= result.demand + 1e-9).all()
