"""Pin the default Oracle candidate grid.

The grid moved from ``np.arange(1.0, 4.01, 0.25)`` (whose inclusion of
the 4.0 endpoint depended on float rounding) to
``np.linspace(1.0, 4.0, 13)``, which states the endpoint contract
directly.  The *values* are part of the published results surface — an
Oracle bound can only come from this grid — so they are pinned exactly.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.engine import DEFAULT_ORACLE_GRID

EXPECTED = (
    1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5, 3.75, 4.0
)


def test_grid_is_pinned_exactly():
    assert DEFAULT_ORACLE_GRID == EXPECTED


def test_grid_matches_legacy_arange():
    """The linspace form is value-identical to the historical arange."""
    legacy = tuple(np.arange(1.0, 4.01, 0.25).tolist())
    assert DEFAULT_ORACLE_GRID == legacy


def test_grid_shape_and_endpoints():
    assert len(DEFAULT_ORACLE_GRID) == 13
    assert DEFAULT_ORACLE_GRID[0] == 1.0
    assert DEFAULT_ORACLE_GRID[-1] == 4.0
    assert all(isinstance(v, float) for v in DEFAULT_ORACLE_GRID)
