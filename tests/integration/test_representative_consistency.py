"""The representative-PDU model vs the explicit multi-group controller.

The evaluation facility is homogeneous, so the single-group controller
collapses all PDUs into one representative (an O(1)-per-step optimisation).
These tests validate that claim end-to-end: under even load, the explicit
multi-group controller produces the same aggregate trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multigroup import build_multigroup
from repro.core.strategies import GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter

N_GROUPS = 4
SERVERS = 50


def run_representative(demands):
    config = DataCenterConfig(
        n_pdus=N_GROUPS, servers_per_pdu=SERVERS, enforce_chip_thermal=False
    )
    dc = build_datacenter(config)
    controller = dc.controller(GreedyStrategy())
    served = []
    for t, demand in enumerate(demands):
        served.append(controller.step(demand, float(t)).served)
    return np.asarray(served), dc


def run_multigroup(demands):
    controller = build_multigroup(n_groups=N_GROUPS, servers_per_group=SERVERS)
    served = []
    for t, demand in enumerate(demands):
        step = controller.step([demand] * N_GROUPS, float(t))
        served.append(step.groups[0].served)
    return np.asarray(served), controller


class TestHomogeneousEquivalence:
    def test_even_burst_trajectories_match(self):
        demands = [0.8] * 60 + [2.4] * 600 + [0.8] * 60
        rep, _ = run_representative(demands)
        multi, _ = run_multigroup(demands)
        # The controllers differ slightly in bookkeeping (the multi-group
        # version has no idle recharge), so compare the served trajectory
        # with a small tolerance.
        assert np.allclose(rep, multi, atol=0.08)
        assert float(np.abs(rep - multi).mean()) < 0.02

    def test_aggregate_energy_use_matches(self):
        demands = [0.8] * 30 + [2.6] * 420
        _, dc = run_representative(demands)
        _, controller = run_multigroup(demands)
        rep_soc = dc.topology.pdu.ups.state_of_charge
        multi_socs = [
            p.ups.state_of_charge for p in controller.topology.pdus
        ]
        # Even load drains every explicit group like the representative.
        for soc in multi_socs:
            assert soc == pytest.approx(rep_soc, abs=0.05)

    def test_neither_variant_trips(self):
        demands = [3.0] * 900
        _, dc = run_representative(demands)
        _, controller = run_multigroup(demands)
        assert not dc.topology.dc_breaker.tripped
        assert not controller.topology.dc_breaker.tripped
