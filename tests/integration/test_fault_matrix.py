"""Fault matrix: every fault kind against every strategy must complete.

The acceptance bar for graceful degradation: with a fault plan active no
substrate exception escapes :func:`run_simulation`, every run returns a
:class:`SimulationResult` with one ControlStep per trace sample, and the
fault telemetry (``fault_events`` / ``aborted_at_s``) is coherent.
"""

from __future__ import annotations

import math

import pytest

from repro.core.strategies import (
    FixedUpperBoundStrategy,
    GreedyStrategy,
    HeuristicStrategy,
    MPCStrategy,
    PredictionStrategy,
    UpperBoundTable,
)
from repro.simulation.config import DEFAULT_CONFIG
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import run_simulation, simulate_strategy
from repro.simulation.faults import FaultPlan
from repro.simulation.metrics import SimulationResult
from repro.workloads.yahoo_trace import generate_yahoo_trace

#: One representative spec per fault kind, all striking mid-burst.
FAULT_SPECS = {
    "breaker_trip": "breaker@400s:fraction=0.5",
    "breaker_trip_dc": "breaker@400s:target=dc",
    "breaker_derate": "derate@400s:fraction=0.25",
    "ups_failure": "ups@400s:fraction=0.5",
    "chiller_outage": "chiller@400s",
    "tes_valve_stuck": "tes@400s",
    "trace_gap": "gap@400s:duration=120",
}


def _table():
    table = UpperBoundTable()
    table.set(300.0, 3.2, 4.0)
    table.set(600.0, 3.2, 3.0)
    table.set(900.0, 3.2, 2.5)
    return table


def _strategies(trace):
    cluster = build_datacenter(DEFAULT_CONFIG).cluster
    return [
        GreedyStrategy(),
        FixedUpperBoundStrategy(3.0),
        PredictionStrategy(_table(), trace.over_capacity_time_s()),
        HeuristicStrategy(2.4, cluster.additional_power_at_degree_w),
        # A small grid/horizon keeps the rollouts cheap on the full facility.
        MPCStrategy(candidate_bounds=(2.0, 3.0, 4.0), horizon_s=300.0),
    ]


@pytest.fixture(scope="module")
def trace():
    return generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)


class TestFaultMatrix:
    @pytest.mark.parametrize("fault_key", sorted(FAULT_SPECS))
    def test_every_fault_against_every_strategy(self, trace, fault_key):
        plan = FaultPlan.from_specs([FAULT_SPECS[fault_key]])
        for strategy in _strategies(trace):
            result = simulate_strategy(trace, strategy, fault_plan=plan)
            assert isinstance(result, SimulationResult)
            assert len(result.steps) == len(trace)
            assert any(r.kind != "degraded" for r in result.fault_events)
            if result.aborted_at_s is not None:
                assert result.aborted_at_s >= 400.0
                assert result.degraded
                assert any(
                    r.kind == "degraded" for r in result.fault_events
                )
            # Performance stays a finite number even for a dark facility.
            assert math.isfinite(result.average_performance)

    def test_forced_pdu_trip_degrades_on_the_fault_sample(self, trace):
        plan = FaultPlan.from_specs(["breaker@400s:fraction=0.5"])
        result = simulate_strategy(trace, GreedyStrategy(), fault_plan=plan)
        assert result.aborted_at_s == pytest.approx(400.0)
        # Half the fleet survives: served demand caps at 0.5 afterwards.
        post_fault = result.served[401:]
        assert max(post_fault) <= 0.5 + 1e-9

    def test_dc_breaker_trip_leaves_facility_dark(self, trace):
        plan = FaultPlan.from_specs(["breaker@400s:target=dc"])
        result = simulate_strategy(trace, GreedyStrategy(), fault_plan=plan)
        assert result.aborted_at_s == pytest.approx(400.0)
        assert max(result.served[401:]) == 0.0

    def test_chiller_outage_degrades_organically(self, trace):
        """A dead chiller heats the room until the thermal emergency
        triggers degradation — later than the outage itself."""
        plan = FaultPlan.from_specs(["chiller@400s"])
        result = simulate_strategy(trace, GreedyStrategy(), fault_plan=plan)
        assert result.aborted_at_s is not None
        assert result.aborted_at_s > 400.0
        degraded = [r for r in result.fault_events if r.kind == "degraded"]
        assert "ThermalEmergencyError" in degraded[0].detail

    def test_short_chiller_outage_recovers_without_abort(self, trace):
        """An outage shorter than the room's thermal slack never degrades."""
        plan = FaultPlan.from_specs(["chiller@400s:duration=30"])
        result = simulate_strategy(trace, GreedyStrategy(), fault_plan=plan)
        assert result.aborted_at_s is None
        kinds = [r.kind for r in result.fault_events]
        assert kinds == ["chiller_outage", "chiller_outage:restored"]

    def test_storage_depletion_survives_at_normal_capacity(self, trace):
        """A UPS fleet loss mid-sprint depletes the battery early; the run
        degrades to normal (non-sprinting) capacity, not to zero."""
        plan = FaultPlan.from_specs(["ups@400s:fraction=0.9"])
        result = simulate_strategy(trace, GreedyStrategy(), fault_plan=plan)
        assert len(result.steps) == len(trace)
        if result.aborted_at_s is not None:
            post_fault = result.served[int(result.aborted_at_s) + 1:]
            assert max(post_fault) == pytest.approx(1.0)


class TestNoPlanEquivalence:
    def test_empty_plan_is_bit_identical_to_no_plan(self, trace):
        baseline = simulate_strategy(trace, GreedyStrategy())
        empty = simulate_strategy(
            trace, GreedyStrategy(), fault_plan=FaultPlan()
        )
        assert empty.steps == baseline.steps
        assert empty.fault_events == []
        assert empty.aborted_at_s is None

    def test_faulted_facility_is_reusable_afterwards(self, trace):
        """restore_substrate() leaves the facility ready for a clean run."""
        dc = build_datacenter(DEFAULT_CONFIG)
        baseline = run_simulation(dc, trace, GreedyStrategy())
        plan = FaultPlan.from_specs(
            ["derate@400s:fraction=0.5", "ups@400s", "chiller@500s", "tes@10s"]
        )
        run_simulation(dc, trace, GreedyStrategy(), fault_plan=plan)
        again = run_simulation(dc, trace, GreedyStrategy())
        assert again.steps == baseline.steps
