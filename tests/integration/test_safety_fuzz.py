"""Property-based safety fuzzing: no workload may break the controller.

The controller's central promise is unconditional: whatever the demand
trajectory, bounded breaker overload plus UPS/TES dispatch never trips a
breaker and never crosses the thermal threshold.  Hypothesis generates
adversarial demand traces (spikes, square waves, ramps, noise) against a
small facility and asserts the promise plus basic conservation laws.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.strategies import GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

#: Piecewise demand segments: (level, duration in seconds).
segment = st.tuples(
    st.floats(min_value=0.0, max_value=4.0),
    st.integers(min_value=5, max_value=120),
)


def run_trace(levels):
    dc = build_datacenter(SMALL)
    controller = dc.controller(GreedyStrategy())
    t = 0.0
    for level, duration in levels:
        for _ in range(duration):
            controller.step(level, t)
            t += 1.0
    return dc, controller


class TestControllerSafetyFuzz:
    @given(segments=st.lists(segment, min_size=1, max_size=12))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_never_trips_never_overheats(self, segments):
        dc, _ = run_trace(segments)
        assert not dc.topology.pdu.breaker.tripped
        assert not dc.topology.dc_breaker.tripped
        room = dc.cooling.room
        assert room.peak_temperature_c < room.threshold_c

    @given(segments=st.lists(segment, min_size=1, max_size=12))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_accounting_invariants(self, segments):
        _, controller = run_trace(segments)
        admission = controller.admission
        # Served + dropped = offered, exactly.
        assert (
            admission.served_integral + admission.dropped_integral
        ) == pytest.approx(admission.demand_integral)
        # Served never exceeds what the chips can possibly deliver.
        max_capacity = 2.45
        for step in controller.history:
            assert step.served <= min(step.demand, max_capacity) + 1e-9
            assert step.degree <= 4.0 + 1e-9
            assert step.ups_w >= -1e-9

    @given(segments=st.lists(segment, min_size=1, max_size=8))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_energy_stores_never_negative(self, segments):
        dc, _ = run_trace(segments)
        assert dc.topology.ups_energy_j >= -1e-6
        assert dc.cooling.tes.energy_j >= -1e-6

    def test_worst_case_square_wave(self):
        """A pathological 4x square wave at the detector hold-off period."""
        segments = [(4.0, 110), (0.0, 110)] * 8
        dc, controller = run_trace(segments)
        assert not dc.topology.pdu.breaker.tripped
        assert not dc.topology.dc_breaker.tripped
        room = dc.cooling.room
        assert room.peak_temperature_c < room.threshold_c

    @given(
        demands=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=4.0),
                st.floats(min_value=0.0, max_value=4.0),
                st.floats(min_value=0.0, max_value=4.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_multigroup_never_trips_under_random_skew(self, demands):
        """The multi-group coordinator holds the same promise under
        arbitrary per-group demand skew."""
        from repro.core.multigroup import build_multigroup

        controller = build_multigroup(n_groups=3, servers_per_group=50)
        t = 0.0
        for trio in demands:
            for _ in range(60):
                controller.step(list(trio), t)
                t += 1.0
        assert not controller.topology.dc_breaker.tripped
        assert not any(
            p.breaker.tripped for p in controller.topology.pdus
        )
        room = controller.cooling.room
        assert room.peak_temperature_c < room.threshold_c

    def test_sustained_maximum_demand_for_an_hour(self):
        dc, controller = run_trace([(4.0, 3600)])
        assert not dc.topology.pdu.breaker.tripped
        assert not dc.topology.dc_breaker.tripped
        # Long after exhaustion the facility settles at a sustainable
        # degree at or slightly above normal.
        late_degrees = [s.degree for s in controller.history[-300:]]
        assert max(late_degrees) < 1.6
        assert min(late_degrees) >= 1.0 - 1e-9
