"""MPC against the full fault matrix: completion and graceful degradation.

The planner's fault awareness is deliberately myopic — rollouts simulate
the substrate as currently derated but cannot foresee future fault events
— so the acceptance bar is the one the tentpole contract names: every
fault kind completes (one ControlStep per sample, finite performance,
coherent telemetry), and MPC is never worse than admission-control-only
(a constant upper bound of 1.0, the degraded mode's policy) under the
same fault.
"""

from __future__ import annotations

import math

import pytest

from repro.core.strategies import FixedUpperBoundStrategy, MPCStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import simulate_strategy
from repro.simulation.faults import FaultPlan
from repro.simulation.metrics import SimulationResult
from repro.workloads.yahoo_trace import generate_yahoo_trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

#: One representative spec per fault kind, all striking mid-burst —
#: the same matrix the all-strategy suite runs.
FAULT_SPECS = {
    "breaker_trip": "breaker@400s:fraction=0.5",
    "breaker_trip_dc": "breaker@400s:target=dc",
    "breaker_derate": "derate@400s:fraction=0.25",
    "ups_failure": "ups@400s:fraction=0.5",
    "chiller_outage": "chiller@400s",
    "tes_valve_stuck": "tes@400s",
    "trace_gap": "gap@400s:duration=120",
}


def _mpc() -> MPCStrategy:
    """The matrix configuration: re-planning MPC, perfect forecast."""
    return MPCStrategy(
        candidate_bounds=(2.0, 2.5, 3.0, 3.5, 4.0),
        horizon_s=600.0,
        replan_interval_s=120.0,
    )


@pytest.fixture(scope="module")
def trace():
    return generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)


class TestMPCFaultMatrix:
    @pytest.mark.parametrize("fault_key", sorted(FAULT_SPECS))
    def test_every_fault_completes(self, trace, fault_key):
        plan = FaultPlan.from_specs([FAULT_SPECS[fault_key]])
        strategy = _mpc()
        result = simulate_strategy(trace, strategy, SMALL, fault_plan=plan)
        assert isinstance(result, SimulationResult)
        assert len(result.steps) == len(trace)
        assert math.isfinite(result.average_performance)
        assert any(r.kind != "degraded" for r in result.fault_events)
        if result.aborted_at_s is not None:
            assert result.aborted_at_s >= 400.0
            assert result.degraded
        # The burst started before the fault, so at least one plan landed.
        assert len(strategy.plan_log) >= 1

    @pytest.mark.parametrize("fault_key", sorted(FAULT_SPECS))
    def test_never_worse_than_admission_control_only(self, trace, fault_key):
        """The graceful-degradation floor: under every fault kind, planning
        rollouts on a (possibly derated) substrate must not do worse than
        refusing to sprint at all under the same fault."""
        plan = FaultPlan.from_specs([FAULT_SPECS[fault_key]])
        mpc = simulate_strategy(trace, _mpc(), SMALL, fault_plan=plan)
        admission_only = simulate_strategy(
            trace, FixedUpperBoundStrategy(1.0), SMALL, fault_plan=plan
        )
        assert (
            mpc.average_performance
            >= admission_only.average_performance - 1e-12
        ), fault_key

    def test_replans_after_recoverable_fault(self, trace):
        """A transient chiller outage inside the burst window does not stop
        the cadence: plans keep landing after the fault strikes."""
        plan = FaultPlan.from_specs(["chiller@400s:duration=120"])
        strategy = _mpc()
        result = simulate_strategy(trace, strategy, SMALL, fault_plan=plan)
        assert result.aborted_at_s is None
        assert any(t > 400.0 for t, _ in strategy.plan_log)

    def test_fault_free_matrix_configuration_beats_greedy(self, trace):
        """Sanity anchor for the matrix configuration itself: on the clean
        15-minute burst the re-planning MPC beats Greedy's unbounded
        sprint-then-starve trajectory."""
        from repro.core.strategies import GreedyStrategy

        greedy = simulate_strategy(trace, GreedyStrategy(), SMALL)
        mpc = simulate_strategy(trace, _mpc(), SMALL)
        assert mpc.average_performance > greedy.average_performance
