"""End-to-end runs of every strategy on the evaluation workloads."""

from __future__ import annotations

import pytest

from repro.core.adaptive import (
    AdaptivePredictionStrategy,
    RecedingHorizonStrategy,
)
from repro.core.strategies import (
    FixedUpperBoundStrategy,
    GreedyStrategy,
    HeuristicStrategy,
    MPCStrategy,
    PredictionStrategy,
    UpperBoundTable,
)
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import simulate_strategy
from repro.workloads.forecasting import BurstDurationEstimator
from repro.workloads.yahoo_trace import generate_yahoo_trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


@pytest.fixture(scope="module")
def long_burst():
    return generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)


@pytest.fixture(scope="module")
def small_cluster():
    return build_datacenter(SMALL).cluster


def small_table():
    table = UpperBoundTable()
    table.set(300.0, 3.2, 4.0)
    table.set(600.0, 3.2, 3.0)
    table.set(900.0, 3.2, 2.5)
    return table


class TestEveryStrategyRuns:
    def test_all_strategies_complete_and_sprint(self, long_burst, small_cluster):
        strategies = [
            GreedyStrategy(),
            FixedUpperBoundStrategy(2.5),
            PredictionStrategy(
                small_table(), long_burst.over_capacity_time_s()
            ),
            HeuristicStrategy(
                2.4, small_cluster.additional_power_at_degree_w
            ),
            AdaptivePredictionStrategy(small_table()),
            RecedingHorizonStrategy(
                small_cluster,
                predicted_burst_duration_s=long_burst.over_capacity_time_s(),
            ),
            MPCStrategy(
                candidate_bounds=(2.0, 2.5, 3.0, 3.5, 4.0),
                horizon_s=float(len(long_burst)),
            ),
            MPCStrategy(
                candidate_bounds=(2.0, 2.5, 3.0, 3.5, 4.0),
                horizon_s=600.0,
                replan_interval_s=120.0,
                forecast="predicted",
                predicted_burst_duration_s=long_burst.over_capacity_time_s(),
            ),
        ]
        for strategy in strategies:
            result = simulate_strategy(long_burst, strategy, SMALL)
            assert result.average_performance > 1.3, strategy.name
            assert result.peak_degree > 1.5, strategy.name

    def test_constrained_family_beats_greedy_on_long_bursts(
        self, long_burst, small_cluster
    ):
        greedy = simulate_strategy(long_burst, GreedyStrategy(), SMALL)
        for strategy in (
            PredictionStrategy(
                small_table(), long_burst.over_capacity_time_s()
            ),
            HeuristicStrategy(
                2.4, small_cluster.additional_power_at_degree_w
            ),
            RecedingHorizonStrategy(
                small_cluster,
                predicted_burst_duration_s=long_burst.over_capacity_time_s(),
            ),
            MPCStrategy(
                candidate_bounds=(2.0, 2.5, 3.0, 3.5, 4.0),
                horizon_s=float(len(long_burst)),
            ),
        ):
            result = simulate_strategy(long_burst, strategy, SMALL)
            assert result.average_performance > greedy.average_performance, (
                strategy.name
            )


class TestAdaptiveRecedingHorizon:
    def test_estimator_driven_variant(self, long_burst, small_cluster):
        """The adaptive receding-horizon flavour works from an estimator
        prior instead of an exact duration."""
        estimator = BurstDurationEstimator(prior_duration_s=600.0)
        strategy = RecedingHorizonStrategy(
            small_cluster, estimator=estimator
        )
        result = simulate_strategy(long_burst, strategy, SMALL)
        assert result.average_performance > 1.4

    def test_estimator_learns_from_episode(self, small_cluster):
        import numpy as np

        from repro.workloads.traces import Trace

        episode = [0.7] * 300 + [3.0] * 480
        trace = Trace(
            np.asarray(episode * 2 + [0.7] * 300, dtype=float), 1.0, "x2"
        )
        estimator = BurstDurationEstimator(prior_duration_s=60.0)
        strategy = RecedingHorizonStrategy(
            small_cluster, estimator=estimator
        )
        simulate_strategy(trace, strategy, SMALL)
        # The completed first episode entered the history.
        assert estimator.historical_mean_s > 300.0


class TestRechargePlannerAlternatives:
    def test_tes_priority_branch(self):
        """With ups_priority=False the tank fills first."""
        from repro.cooling.crac import CoolingPlant
        from repro.cooling.recharge import RechargePlanner
        from repro.cooling.tes import TesTank
        from repro.power.topology import PowerTopology

        topo = PowerTopology(n_pdus=2, servers_per_pdu=50)
        tes = TesTank.sized_for(topo.peak_normal_it_power_w)
        plant = CoolingPlant(
            peak_normal_it_power_w=topo.peak_normal_it_power_w, tes=tes
        )
        topo.pdu.ups.discharge_up_to(topo.pdu.ups.available_power_w(), 30.0)
        tes.absorb_up_to(tes.max_discharge_w, 300.0)
        planner = RechargePlanner(topo, plant, ups_priority=False)
        allocation = planner.plan(
            current_feed_w=100.0, current_heat_w=100.0
        )
        assert allocation.tes_electric_w > 0.0
        # With TES first and a small budget, the batteries get the rest.
        assert allocation.total_electric_w <= planner.electric_slack_w(100.0)


class TestExportFieldCoverage:
    def test_step_fields_exist_on_control_step(self):
        """The CSV schema never drifts from the ControlStep definition."""
        from repro.core.controller import ControlStep
        from repro.simulation.export import STEP_FIELDS

        import dataclasses

        field_names = {f.name for f in dataclasses.fields(ControlStep)}
        for name in STEP_FIELDS:
            assert name in field_names, name
