"""End-to-end reproduction checks against the paper's reported results.

These tests assert the *shape* of every headline claim: who wins, by
roughly what factor, and where the crossovers fall.  Absolute values are
asserted with generous bands because the substrate is a simulator, not the
authors' testbed (see EXPERIMENTS.md for measured-vs-paper numbers).
"""

from __future__ import annotations

import pytest

from repro.core.strategies import FixedUpperBoundStrategy, GreedyStrategy
from repro.simulation.engine import (
    oracle_for_trace,
    simulate_strategy,
)
from repro.simulation.datacenter import build_datacenter
from repro.workloads.yahoo_trace import generate_yahoo_trace

ORACLE_GRID = (2.0, 2.5, 3.0, 3.5, 4.0)


@pytest.fixture(scope="module")
def ms_greedy(ms_trace):
    return simulate_strategy(ms_trace, GreedyStrategy())


@pytest.fixture(scope="module")
def ms_oracle(ms_trace):
    return oracle_for_trace(ms_trace, candidates=ORACLE_GRID)


class TestUncontrolledBaseline:
    """Fig. 8a: uncontrolled chip sprinting trips a breaker ~5 min 20 s in."""

    def test_trip_time_near_five_minutes_twenty(self, ms_trace):
        dc = build_datacenter()
        baseline = dc.uncontrolled()
        for i, demand in enumerate(ms_trace):
            baseline.step(demand, float(i))
        assert baseline.trip_time_s is not None
        assert 280.0 <= baseline.trip_time_s <= 340.0

    def test_controlled_sprinting_survives_the_whole_trace(self, ms_trace):
        """Fig. 8b: Data Center Sprinting sustains where uncontrolled
        sprinting shuts the facility down."""
        dc = build_datacenter()
        controller = dc.controller(GreedyStrategy())
        for i, demand in enumerate(ms_trace):
            controller.step(demand, float(i))
        assert not dc.topology.pdu.breaker.tripped
        assert not dc.topology.dc_breaker.tripped
        room = dc.cooling.room
        assert room.peak_temperature_c < room.threshold_c


class TestMsTraceResults:
    """Fig. 9 region: strategies on the MS trace."""

    def test_greedy_improvement_in_paper_band(self, ms_greedy):
        """The paper reports 1.62-1.76x on the MS trace; our simulator
        lands in the same neighbourhood."""
        assert 1.55 <= ms_greedy.average_performance <= 2.1

    def test_oracle_beats_greedy(self, ms_greedy, ms_oracle):
        assert ms_oracle.achieved_performance > (
            ms_greedy.average_performance + 0.02
        )

    def test_oracle_bound_is_interior(self, ms_oracle):
        """Constrained sprinting wins: the optimal bound is below the chip
        maximum (Section V-A's thesis)."""
        assert 2.0 <= ms_oracle.upper_bound < 4.0

    def test_energy_split_ups_dominates(self, ms_greedy):
        """Section VII-A: the UPS provides the largest share of additional
        energy (54 % in the paper), the TES a minor share (13 %)."""
        shares = ms_greedy.energy_shares
        assert shares["ups"] > shares["tes"]
        assert shares["ups"] > 0.2
        assert 0.0 < shares["tes"] < 0.35


class TestYahooTraceResults:
    """Fig. 10: burst degree/duration sweep on the Yahoo trace."""

    def test_short_burst_greedy_equals_oracle(self):
        """Fig. 10a: for 5-minute bursts the stored energy is not
        exhausted, so Greedy matches the Oracle."""
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=5)
        greedy = simulate_strategy(trace, GreedyStrategy())
        oracle = oracle_for_trace(trace, candidates=ORACLE_GRID)
        assert greedy.average_performance == pytest.approx(
            oracle.achieved_performance, rel=0.02
        )

    def test_long_burst_oracle_beats_greedy(self):
        """Fig. 10b: at 15 minutes the Greedy strategy is significantly
        degraded while constrained bounds keep serving."""
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)
        greedy = simulate_strategy(trace, GreedyStrategy())
        oracle = oracle_for_trace(trace, candidates=ORACLE_GRID)
        assert oracle.achieved_performance > greedy.average_performance * 1.05
        assert oracle.upper_bound < 4.0

    def test_improvement_factors_in_paper_band(self):
        """The paper reports 1.75-2.45x across the Yahoo sweeps."""
        perfs = []
        for degree in (2.6, 3.2, 3.6):
            for duration in (5, 15):
                trace = generate_yahoo_trace(
                    burst_degree=degree, burst_duration_min=duration
                )
                perfs.append(
                    simulate_strategy(trace, GreedyStrategy()).average_performance
                )
        assert min(perfs) >= 1.6
        assert max(perfs) <= 2.5
        assert max(perfs) >= 2.2

    def test_best_case_hits_capacity_ceiling(self):
        """The 2.45x best case is the throughput ceiling at full degree."""
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=5)
        result = simulate_strategy(trace, GreedyStrategy())
        assert result.average_performance <= 2.45 + 1e-6
        assert result.average_performance > 2.3

    def test_greedy_degrades_with_degree_on_long_bursts(self):
        """Fig. 10b: higher burst degree wastes stored energy faster under
        Greedy."""
        low = simulate_strategy(
            generate_yahoo_trace(burst_degree=2.6, burst_duration_min=15),
            GreedyStrategy(),
        )
        high = simulate_strategy(
            generate_yahoo_trace(burst_degree=3.6, burst_duration_min=15),
            GreedyStrategy(),
        )
        assert high.average_performance < low.average_performance


class TestSensitivity:
    """Section VI-A: headroom (0-20 %) and PUE sensitivity."""

    def test_more_headroom_helps(self, ms_trace):
        from repro.simulation.config import DataCenterConfig

        tight = simulate_strategy(
            ms_trace, GreedyStrategy(), DataCenterConfig(dc_headroom_fraction=0.0)
        )
        roomy = simulate_strategy(
            ms_trace, GreedyStrategy(), DataCenterConfig(dc_headroom_fraction=0.20)
        )
        assert roomy.average_performance >= tight.average_performance

    def test_pue_shifts_sprinting_headroom(self, ms_trace):
        """Higher PUE means the infrastructure is rated for a larger
        facility feed AND the TES can shave a larger absolute chiller
        draw in Phase 3 — so, counter-intuitively, sprinting headroom
        *grows* with PUE (within a couple of percent across 1.2-1.8)."""
        from repro.simulation.config import DataCenterConfig

        perfs = {
            pue: simulate_strategy(
                ms_trace, GreedyStrategy(), DataCenterConfig(pue=pue)
            ).average_performance
            for pue in (1.2, 1.53, 1.8)
        }
        assert perfs[1.8] >= perfs[1.53] >= perfs[1.2]
        assert perfs[1.8] - perfs[1.2] < 0.15

    def test_no_tes_still_sprints_but_shorter(self, ms_trace):
        """Section V: without TES sprinting still works (the room's thermal
        capacitance buys time) but less demand is served."""
        from repro.simulation.config import DataCenterConfig

        with_tes = simulate_strategy(ms_trace, GreedyStrategy())
        without = simulate_strategy(
            ms_trace, GreedyStrategy(), DataCenterConfig(has_tes=False)
        )
        assert without.average_performance > 1.2
        assert without.average_performance < with_tes.average_performance
