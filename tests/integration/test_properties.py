"""Cross-module property-based tests (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.strategies import GreedyStrategy
from repro.economics.revenue import SprintingRevenue
from repro.power.breaker import CircuitBreaker
from repro.servers.cluster import ServerCluster
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import simulate_strategy
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


class TestEconomicsProperties:
    @given(
        m1=st.floats(min_value=1.01, max_value=3.9),
        m2=st.floats(min_value=0.01, max_value=0.09),
        duration=st.floats(min_value=1.0, max_value=30.0),
        bursts=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50)
    def test_revenue_monotone_in_magnitude(self, m1, m2, duration, bursts):
        revenue = SprintingRevenue()
        low = revenue.monthly_revenue_usd(m1, duration, bursts)
        high = revenue.monthly_revenue_usd(m1 + m2, duration, bursts)
        assert high >= low - 1e-9

    @given(
        magnitude=st.floats(min_value=1.01, max_value=4.0),
        duration=st.floats(min_value=1.0, max_value=30.0),
        bursts=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=50)
    def test_revenue_non_negative(self, magnitude, duration, bursts):
        revenue = SprintingRevenue()
        assert revenue.monthly_revenue_usd(magnitude, duration, bursts) >= 0.0

    @given(
        magnitude=st.floats(min_value=1.01, max_value=4.0),
        duration=st.floats(min_value=1.0, max_value=30.0),
    )
    @settings(max_examples=30)
    def test_retention_saturates(self, magnitude, duration):
        """Retention revenue never exceeds the full monthly stake."""
        revenue = SprintingRevenue(users_ratio=4.0)
        value = revenue.retention_revenue_usd(magnitude, 100)
        assert value <= revenue.monthly_retention_stake_usd * (1 + 1e-9)


class TestBreakerProperties:
    @given(
        reserve=st.floats(min_value=1.0, max_value=600.0),
        preload_s=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=50)
    def test_bound_honours_reserve_from_any_state(self, reserve, preload_s):
        cb = CircuitBreaker(name="p", rated_power_w=1000.0)
        for _ in range(preload_s):
            cb.step(1550.0, 1.0)
        bound = cb.max_load_for_trip_time(reserve)
        assert cb.remaining_trip_time_s(bound) >= reserve * (1.0 - 1e-6)

    @given(
        r1=st.floats(min_value=1.0, max_value=300.0),
        extra=st.floats(min_value=1.0, max_value=300.0),
    )
    @settings(max_examples=50)
    def test_bound_monotone_in_reserve(self, r1, extra):
        cb = CircuitBreaker(name="p", rated_power_w=1000.0)
        assert cb.max_load_for_trip_time(r1) >= cb.max_load_for_trip_time(
            r1 + extra
        ) - 1e-9


class TestClusterProperties:
    @given(
        d1=st.floats(min_value=0.1, max_value=3.9),
        d2=st.floats(min_value=0.01, max_value=0.1),
    )
    @settings(max_examples=50)
    def test_capacity_monotone(self, d1, d2):
        cluster = ServerCluster(n_servers=100)
        assert cluster.capacity_at_degree(d1 + d2) >= (
            cluster.capacity_at_degree(d1)
        )

    @given(demand=st.floats(min_value=0.0, max_value=2.44))
    @settings(max_examples=50)
    def test_degree_for_demand_covers_demand(self, demand):
        cluster = ServerCluster(n_servers=100)
        degree = cluster.degree_for_demand(demand)
        assert cluster.capacity_at_degree(degree) >= demand - 1e-9


class TestSimulationDeterminism:
    def test_identical_runs_bitwise_equal(self):
        values = [0.8] * 30 + [2.3] * 120 + [0.8] * 30
        trace = Trace(np.asarray(values, dtype=float), 1.0, "det")
        a = simulate_strategy(trace, GreedyStrategy(), SMALL)
        b = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert a.served.tolist() == b.served.tolist()
        assert a.degrees.tolist() == b.degrees.tolist()
        assert a.energy_shares == b.energy_shares

    def test_packaged_traces_are_stable(self, ms_trace):
        """The packaged seeds never drift: a checksum over the reference
        trace pins the exact workload every experiment depends on."""
        checksum = float(np.sum(ms_trace.samples))
        # Regenerating from the same seed yields the identical array.
        from repro.workloads.ms_trace import default_ms_trace

        again = default_ms_trace()
        assert float(np.sum(again.samples)) == checksum
        assert np.array_equal(again.samples, ms_trace.samples)
