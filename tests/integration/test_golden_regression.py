"""Golden regression layer pinning the paper's headline numbers.

The batch sweep engine rewired every headline experiment path (Oracle
search, upper-bound table, the Fig. 9/10 sweeps); these tests pin the
reproduced numbers so that rewiring — or any future engine change —
cannot silently drift the results.

Two layers of assertion:

* **paper band** — the improvement factors stay inside the abstract's
  1.62-2.45x claim on both evaluation workloads;
* **golden pins** — the exact reproduced values, at tight relative
  tolerance, so even in-band drift is caught and has to be acknowledged
  by updating the pin.

All golden runs go through the serial :class:`SweepRunner` path, which is
asserted (elsewhere, and once more here) to be bit-identical to the
direct engine path.
"""

from __future__ import annotations

import pytest

from repro.core.strategies import GreedyStrategy
from repro.simulation.batch import StrategySpec, SweepRunner
from repro.simulation.engine import simulate_strategy
from repro.workloads.ms_trace import default_ms_trace

#: The abstract's headline claim: "a factor of 1.62 to 2.45".
PAPER_BAND = (1.62, 2.45)

#: The paper's Oracle candidate grid used by the headline experiments.
CANDIDATES = (2.0, 2.5, 3.0, 3.5, 4.0)

#: Golden pins, reproduced on the reference traces with the default
#: Section VI-A configuration.  Update deliberately, never casually: a
#: change here means the reproduced physics changed.
#:
#: Last deliberate update: the UL489 hold-region fix.  The breaker's
#: 100-104 % hold region used to cool the thermal accumulator like idle
#: load; it now (correctly) holds the trip fraction flat, so runs that
#: park at the rating retain their thermal history and the achievable
#: performance dips slightly on the MS and Yahoo-15min workloads.  Both
#: stay inside the paper band.
GOLDEN = {
    "ms_greedy_performance": 1.7880068803881823,
    "ms_oracle_bound": 3.0,
    "ms_oracle_performance": 1.9941688273969485,
    "ms_greedy_sprint_min": 17.283333333333335,
    "yahoo15_greedy_performance": 1.7540118088104402,
    "yahoo15_oracle_bound": 2.5,
    "yahoo15_oracle_performance": 1.9661287934272929,
    "yahoo5_greedy_performance": 2.405137631297763,
}

#: Relative tolerance of the pins: tight enough to catch any change in
#: the control/physics path, loose enough to tolerate float noise from
#: BLAS/numpy reduction-order differences across platforms.
PIN_RTOL = 1e-6


@pytest.fixture(scope="module")
def runner():
    """Serial, cache-less runner: the reference path for golden numbers."""
    return SweepRunner(max_workers=1, cache_dir=None)


class TestMsTraceGolden:
    def test_greedy_pinned_and_in_paper_band(self, runner, ms_trace):
        outcome = runner.simulate(ms_trace, StrategySpec.greedy())
        assert outcome.average_performance == pytest.approx(
            GOLDEN["ms_greedy_performance"], rel=PIN_RTOL
        )
        assert PAPER_BAND[0] <= outcome.average_performance <= PAPER_BAND[1]
        assert outcome.sprint_duration_s / 60.0 == pytest.approx(
            GOLDEN["ms_greedy_sprint_min"], rel=PIN_RTOL
        )

    def test_oracle_pinned_and_in_paper_band(self, runner, ms_trace):
        oracle = runner.oracle_search(ms_trace, candidates=CANDIDATES)
        assert oracle.upper_bound == GOLDEN["ms_oracle_bound"]
        assert oracle.achieved_performance == pytest.approx(
            GOLDEN["ms_oracle_performance"], rel=PIN_RTOL
        )
        assert PAPER_BAND[0] <= oracle.achieved_performance <= PAPER_BAND[1]

    def test_batch_path_equals_direct_engine_path(self, runner, ms_trace):
        """The golden numbers are path-independent: the batch outcome is
        bit-identical to a direct simulate_strategy call."""
        direct = simulate_strategy(ms_trace, GreedyStrategy())
        batched = runner.simulate(ms_trace, StrategySpec.greedy())
        assert batched.average_performance == direct.average_performance
        assert batched.sprint_duration_s == direct.sprint_duration_s


class TestYahooTraceGolden:
    def test_long_burst_greedy_and_oracle_pinned(self, runner, yahoo_trace_15min):
        greedy = runner.simulate(yahoo_trace_15min, StrategySpec.greedy())
        assert greedy.average_performance == pytest.approx(
            GOLDEN["yahoo15_greedy_performance"], rel=PIN_RTOL
        )
        oracle = runner.oracle_search(yahoo_trace_15min, candidates=CANDIDATES)
        assert oracle.upper_bound == GOLDEN["yahoo15_oracle_bound"]
        assert oracle.achieved_performance == pytest.approx(
            GOLDEN["yahoo15_oracle_performance"], rel=PIN_RTOL
        )
        for value in (greedy.average_performance, oracle.achieved_performance):
            assert PAPER_BAND[0] <= value <= PAPER_BAND[1]
        # Section V-A's thesis on long bursts: the constrained Oracle
        # bound beats unconstrained Greedy.
        assert oracle.achieved_performance > greedy.average_performance

    def test_short_burst_greedy_pinned(self, runner, yahoo_trace_5min):
        outcome = runner.simulate(yahoo_trace_5min, StrategySpec.greedy())
        assert outcome.average_performance == pytest.approx(
            GOLDEN["yahoo5_greedy_performance"], rel=PIN_RTOL
        )
        assert PAPER_BAND[0] <= outcome.average_performance <= PAPER_BAND[1]

    def test_improvement_range_brackets_paper_claim(
        self, runner, yahoo_trace_5min, yahoo_trace_15min, ms_trace
    ):
        """The reproduced min/max improvement factors straddle the band the
        same way the full headline benchmark does: low end near 1.62-1.8x
        on long bursts, high end near 2.4x on short ones."""
        values = [
            runner.simulate(t, StrategySpec.greedy()).average_performance
            for t in (ms_trace, yahoo_trace_5min, yahoo_trace_15min)
        ]
        assert 1.62 <= min(values) <= 2.0
        assert 2.2 <= max(values) <= 2.45
