"""Tests for the chip-level PCM heat sink and its controller coupling."""

from __future__ import annotations

import math

import pytest

from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.servers.chip import ChipModel
from repro.servers.pcm import PcmHeatSink
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter


def make_pcm(endurance_min=30.0):
    chip = ChipModel()
    excess = chip.full_power_w - chip.normal_power_w
    return PcmHeatSink(chip=chip, latent_budget_j=excess * endurance_min * 60.0)


class TestPcmPhysics:
    def test_default_full_sprint_endurance(self):
        pcm = make_pcm(endurance_min=30.0)
        assert pcm.endurance_s(4.0) == pytest.approx(30.0 * 60.0)

    def test_normal_operation_never_melts(self):
        pcm = make_pcm()
        for _ in range(10_000):
            pcm.step(1.0, 1.0)
        assert pcm.melted_fraction == 0.0
        assert math.isinf(pcm.endurance_s(1.0))

    def test_sprinting_melts_then_exhausts(self):
        pcm = make_pcm(endurance_min=1.0)
        for _ in range(59):
            pcm.step(4.0, 1.0)
        assert not pcm.exhausted
        pcm.step(4.0, 1.0)
        assert pcm.exhausted

    def test_lower_degree_lasts_longer(self):
        pcm = make_pcm()
        assert pcm.endurance_s(2.0) > pcm.endurance_s(4.0)

    def test_refreeze_during_normal_operation(self):
        pcm = make_pcm(endurance_min=1.0)
        for _ in range(30):
            pcm.step(4.0, 1.0)
        melted = pcm.melted_j
        pcm.step(1.0, 10.0)
        assert pcm.melted_j < melted

    def test_refreeze_saturates_at_solid(self):
        pcm = make_pcm()
        pcm.step(1.0, 1e6)
        assert pcm.melted_j == 0.0

    def test_max_sustainable_degree_shrinks_with_melt(self):
        pcm = make_pcm(endurance_min=1.0)
        fresh = pcm.max_sustainable_degree(120.0)
        for _ in range(30):
            pcm.step(4.0, 1.0)
        worn = pcm.max_sustainable_degree(120.0)
        assert worn < fresh

    def test_exhaustion_latches_until_fully_solid(self):
        """The Section IV rule ends the sprinting episode; a sliver of
        re-frozen material must not flicker it back on."""
        pcm = make_pcm(endurance_min=1.0)
        for _ in range(60):
            pcm.step(4.0, 1.0)
        assert pcm.exhausted
        pcm.step(1.0, 5.0)  # partially re-frozen
        assert pcm.melted_fraction < 1.0
        assert pcm.exhausted  # still latched
        pcm.step(1.0, 1e6)  # fully solid again
        assert not pcm.exhausted

    def test_exhausted_pcm_allows_only_normal(self):
        pcm = make_pcm(endurance_min=1.0)
        for _ in range(60):
            pcm.step(4.0, 1.0)
        assert pcm.max_sustainable_degree(10.0) == pytest.approx(1.0)

    def test_reset(self):
        pcm = make_pcm(endurance_min=1.0)
        for _ in range(30):
            pcm.step(4.0, 1.0)
        pcm.reset()
        assert pcm.melted_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PcmHeatSink(latent_budget_j=-1.0)


class TestControllerCoupling:
    def test_small_pcm_ends_dc_sprinting(self):
        """Section IV: exhausted chip-level sprinting finishes DC
        sprinting, whatever the data-center-level budgets still hold."""
        config = DataCenterConfig(
            n_pdus=2, servers_per_pdu=50, chip_sprint_endurance_min=2.0
        )
        dc = build_datacenter(config)
        controller = dc.controller(GreedyStrategy())
        degrees = [controller.step(3.0, float(t)).degree for t in range(600)]
        assert max(degrees[:60]) > 2.0  # sprinting initially
        assert max(degrees[-120:]) <= 1.0 + 1e-9  # ended by the chip limit

    def test_default_endurance_never_binds(self):
        """At the default 30-minute budget the DC-level constraints bind
        first — the paper's operating assumption."""
        config = DataCenterConfig(n_pdus=2, servers_per_pdu=50)
        dc = build_datacenter(config)
        controller = dc.controller(GreedyStrategy())
        for t in range(1800):
            controller.step(3.0, float(t))
        assert not controller.pcm.exhausted

    def test_can_be_disabled(self):
        config = DataCenterConfig(
            n_pdus=2, servers_per_pdu=50, enforce_chip_thermal=False
        )
        dc = build_datacenter(config)
        controller = dc.controller(GreedyStrategy())
        assert controller.pcm is None

    def test_reset_refreezes(self):
        config = DataCenterConfig(
            n_pdus=2, servers_per_pdu=50, chip_sprint_endurance_min=2.0
        )
        dc = build_datacenter(config)
        controller = dc.controller(GreedyStrategy())
        for t in range(300):
            controller.step(3.0, float(t))
        controller.reset()
        assert controller.pcm.melted_fraction == 0.0
