"""Tests for the many-core chip power model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.servers.chip import ChipModel


class TestChipPaperNumbers:
    def test_full_utilisation_125w(self):
        """48 cores fully utilised: 5 + 48 x 2.5 = 125 W (Section VI-A)."""
        assert ChipModel().full_power_w == pytest.approx(125.0)

    def test_all_cores_inactive_5w(self):
        assert ChipModel().power_w(0) == pytest.approx(5.0)

    def test_normal_operation_35w(self):
        """12 normal cores: 5 + 12 x 2.5 = 35 W."""
        assert ChipModel().normal_power_w == pytest.approx(35.0)

    def test_max_sprinting_degree_is_four(self):
        assert ChipModel().max_sprinting_degree == pytest.approx(4.0)


class TestDegreeArithmetic:
    def test_cores_for_degree_one(self):
        assert ChipModel().cores_for_degree(1.0) == 12

    def test_cores_for_degree_four(self):
        assert ChipModel().cores_for_degree(4.0) == 48

    def test_cores_round_up(self):
        """Fractional degrees round up so capacity is never short."""
        assert ChipModel().cores_for_degree(1.01) == 13

    def test_cores_clamped_to_chip(self):
        assert ChipModel().cores_for_degree(10.0) == 48

    def test_degree_for_cores(self):
        chip = ChipModel()
        assert chip.degree_for_cores(24) == pytest.approx(2.0)
        assert chip.degree_for_cores(48) == pytest.approx(4.0)

    def test_degree_for_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            ChipModel().degree_for_cores(49)

    @given(degree=st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=50)
    def test_cores_for_degree_covers_request(self, degree):
        chip = ChipModel()
        cores = chip.cores_for_degree(degree)
        assert chip.degree_for_cores(cores) >= min(degree, 4.0) - 1e-9


class TestChipPower:
    def test_power_scales_with_utilisation(self):
        chip = ChipModel()
        assert chip.power_w(48, utilization=0.5) == pytest.approx(
            5.0 + 48 * 2.5 * 0.5
        )

    def test_power_at_continuous_degree(self):
        chip = ChipModel()
        assert chip.power_at_degree_w(2.0) == pytest.approx(5.0 + 24 * 2.5)
        assert chip.power_at_degree_w(1.5) == pytest.approx(5.0 + 18 * 2.5)

    def test_power_at_degree_beyond_max_rejected(self):
        with pytest.raises(ConfigurationError):
            ChipModel().power_at_degree_w(4.5)

    def test_power_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            ChipModel().power_w(-1)
        with pytest.raises(ConfigurationError):
            ChipModel().power_w(49)

    def test_power_invalid_utilisation(self):
        with pytest.raises(ConfigurationError):
            ChipModel().power_w(12, utilization=1.5)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ChipModel(normal_cores=0)
        with pytest.raises(ConfigurationError):
            ChipModel(normal_cores=49)

    @given(d=st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=50)
    def test_power_monotone_in_degree(self, d):
        chip = ChipModel()
        assert chip.power_at_degree_w(d) <= chip.power_at_degree_w(
            min(4.0, d + 0.1)
        ) + 1e-9
