"""Tests for the server-fleet aggregate model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.servers.cluster import ServerCluster
from repro.servers.performance import ThroughputModel


class TestClusterPaperNumbers:
    def test_fleet_peak_normal_power_near_10mw(self):
        """180,000 servers x 55 W = 9.9 MW (the paper's 10 MW facility)."""
        assert ServerCluster().peak_normal_power_w == pytest.approx(9.9e6)

    def test_full_sprint_power(self):
        assert ServerCluster().full_sprint_power_w == pytest.approx(26.1e6)

    def test_max_additional_power(self):
        assert ServerCluster().max_additional_power_w == pytest.approx(16.2e6)


class TestClusterPower:
    def test_power_at_degree_scales(self):
        cluster = ServerCluster()
        assert cluster.power_at_degree_w(2.0) == pytest.approx(
            180_000 * 85.0
        )

    def test_degree_for_power_inverts_power_at_degree(self):
        cluster = ServerCluster()
        for degree in (0.5, 1.0, 1.7, 2.5, 4.0):
            power = cluster.power_at_degree_w(degree)
            assert cluster.degree_for_power(power) == pytest.approx(
                degree, rel=1e-9
            )

    def test_degree_for_power_clamps(self):
        cluster = ServerCluster()
        assert cluster.degree_for_power(1e12) == pytest.approx(4.0)
        assert cluster.degree_for_power(0.0) == 0.0

    @given(degree=st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=50)
    def test_power_degree_round_trip(self, degree):
        cluster = ServerCluster()
        power = cluster.power_at_degree_w(degree)
        assert cluster.degree_for_power(power) == pytest.approx(
            degree, rel=1e-9
        )


class TestClusterCapacity:
    def test_capacity_at_degree(self):
        cluster = ServerCluster()
        assert cluster.capacity_at_degree(1.0) == pytest.approx(1.0)
        assert cluster.capacity_at_degree(4.0) == pytest.approx(
            cluster.max_capacity
        )

    def test_degree_for_demand(self):
        cluster = ServerCluster()
        demand = 1.8
        degree = cluster.degree_for_demand(demand)
        assert cluster.capacity_at_degree(degree) == pytest.approx(demand)

    def test_demand_beyond_ceiling_needs_max_degree(self):
        cluster = ServerCluster()
        assert cluster.degree_for_demand(3.2) == pytest.approx(4.0)


class TestClusterValidation:
    def test_throughput_degree_must_match_chip(self):
        with pytest.raises(ConfigurationError):
            ServerCluster(throughput=ThroughputModel(max_degree=3.0))

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            ServerCluster(n_servers=0)
