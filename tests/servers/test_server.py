"""Tests for the server power model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.servers.server import ServerModel


class TestServerPaperNumbers:
    def test_peak_normal_55w(self):
        """20 W non-CPU + 5 W idle chip + 12 x 2.5 W = 55 W (Section VI-A)."""
        assert ServerModel().peak_normal_power_w == pytest.approx(55.0)

    def test_full_sprint_145w(self):
        """20 W non-CPU + 125 W chip = 145 W."""
        assert ServerModel().full_sprint_power_w == pytest.approx(145.0)

    def test_max_additional_90w(self):
        assert ServerModel().max_additional_power_w == pytest.approx(90.0)


class TestServerPower:
    def test_power_at_degree(self):
        server = ServerModel()
        assert server.power_at_degree_w(1.0) == pytest.approx(55.0)
        assert server.power_at_degree_w(2.0) == pytest.approx(85.0)
        assert server.power_at_degree_w(4.0) == pytest.approx(145.0)

    def test_additional_power_at_degree(self):
        server = ServerModel()
        assert server.additional_power_at_degree_w(1.0) == 0.0
        assert server.additional_power_at_degree_w(3.0) == pytest.approx(60.0)

    def test_additional_power_below_normal_is_zero(self):
        assert ServerModel().additional_power_at_degree_w(0.5) == 0.0

    def test_power_with_utilisation(self):
        server = ServerModel()
        assert server.power_w(12, utilization=0.0) == pytest.approx(25.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ServerModel(non_cpu_power_w=-1.0)
