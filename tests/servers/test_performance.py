"""Tests for the sprinting-degree throughput (capacity) model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.servers.performance import DEFAULT_MAX_CAPACITY, ThroughputModel


class TestCalibration:
    def test_normal_degree_gives_unit_capacity(self):
        assert ThroughputModel().capacity(1.0) == pytest.approx(1.0)

    def test_max_degree_gives_paper_ceiling(self):
        """capacity(4) = 2.45x, the paper's best-case improvement."""
        model = ThroughputModel()
        assert model.capacity(4.0) == pytest.approx(DEFAULT_MAX_CAPACITY)
        assert DEFAULT_MAX_CAPACITY == pytest.approx(2.45)

    def test_below_normal_scales_linearly(self):
        model = ThroughputModel()
        assert model.capacity(0.5) == pytest.approx(0.5)

    def test_zero_degree_zero_capacity(self):
        assert ThroughputModel().capacity(0.0) == 0.0


class TestConcavity:
    def test_per_core_efficiency_decreases(self):
        """The SPECjbb observation: per-core throughput falls as cores rise."""
        model = ThroughputModel()
        degrees = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
        efficiencies = [model.per_core_efficiency(d) for d in degrees]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_marginal_capacity_decreases(self):
        model = ThroughputModel()
        degrees = [1.2, 1.8, 2.5, 3.2, 4.0]
        marginals = [model.marginal_capacity(d) for d in degrees]
        assert marginals == sorted(marginals, reverse=True)

    def test_capacity_strictly_increasing(self):
        model = ThroughputModel()
        degrees = [0.2, 0.8, 1.0, 1.3, 2.0, 3.0, 4.0]
        capacities = [model.capacity(d) for d in degrees]
        assert capacities == sorted(capacities)

    def test_extra_energy_per_extra_capacity_rises_with_degree(self):
        """The economics behind constrained sprinting: capacity gained per
        additional watt falls as the degree grows."""
        model = ThroughputModel()
        # additional power is proportional to (degree - 1).
        low = (model.capacity(2.0) - 1.0) / 1.0
        high = (model.capacity(4.0) - 1.0) / 3.0
        assert low > high


class TestInverse:
    def test_inverse_round_trip(self):
        model = ThroughputModel()
        for c in (0.3, 1.0, 1.5, 2.0, 2.4):
            degree = model.degree_for_capacity(c)
            assert model.capacity(degree) == pytest.approx(c, rel=1e-9)

    def test_demand_beyond_ceiling_clamps_to_max_degree(self):
        model = ThroughputModel()
        assert model.degree_for_capacity(3.0) == pytest.approx(4.0)

    @given(c=st.floats(min_value=0.01, max_value=2.44))
    @settings(max_examples=50)
    def test_inverse_is_exact_within_range(self, c):
        model = ThroughputModel()
        assert model.capacity(model.degree_for_capacity(c)) == pytest.approx(
            c, rel=1e-9
        )

    @given(d=st.floats(min_value=0.01, max_value=4.0))
    @settings(max_examples=50)
    def test_degree_round_trip(self, d):
        model = ThroughputModel()
        c = model.capacity(d)
        assert model.degree_for_capacity(c) == pytest.approx(d, rel=1e-6)


class TestValidation:
    def test_degree_beyond_max_rejected(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel().capacity(4.5)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ThroughputModel(max_capacity=0.9)
        with pytest.raises(ConfigurationError):
            ThroughputModel(max_degree=1.0)
        with pytest.raises(ConfigurationError):
            # Above (1 + max_degree)/2 per-core throughput would have to
            # *increase* with core count somewhere.
            ThroughputModel(max_capacity=2.6)

    def test_capacity_never_exceeds_degree(self):
        """Per-core throughput never beats the 12-core baseline."""
        model = ThroughputModel()
        for d in (1.1, 1.5, 2.0, 3.0, 4.0):
            assert model.capacity(d) <= d

    def test_marginal_capacity_zero_at_max_degree(self):
        assert ThroughputModel().marginal_capacity(4.0) == pytest.approx(0.0)
