"""Tests for the battery lifetime budgeting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.power.lifetime import BatteryLifetimeTracker, RATED_CYCLES
from repro.power.ups import BatteryChemistry


class TestBudgetTracking:
    def test_within_free_budget(self):
        """Ten full discharges a month cost no battery life ([18])."""
        tracker = BatteryLifetimeTracker()
        for _ in range(10):
            tracker.record_discharge(100.0, 100.0)
        assert tracker.within_free_budget
        assert tracker.excess_cycles == 0.0

    def test_eleventh_discharge_exceeds_budget(self):
        tracker = BatteryLifetimeTracker()
        for _ in range(11):
            tracker.record_discharge(100.0, 100.0)
        assert not tracker.within_free_budget
        assert tracker.excess_cycles == pytest.approx(1.0)

    def test_paper_month_stays_free(self):
        """The paper's calibration anchor: 200 bursts a month discharging
        26 % each 'has no impact on UPS lifetime according to [18]' —
        depth-weighted wear keeps them inside the 10-cycle budget."""
        tracker = BatteryLifetimeTracker()
        for _ in range(200):
            tracker.record_discharge(26.0, 100.0)
        assert tracker.within_free_budget
        assert tracker.cycles_this_month == pytest.approx(
            200 * 0.26 ** 2.3, rel=1e-9
        )

    def test_shallow_cycles_wear_sublinearly(self):
        shallow = BatteryLifetimeTracker()
        deep = BatteryLifetimeTracker()
        for _ in range(4):
            shallow.record_discharge(25.0, 100.0)
        deep.record_discharge(100.0, 100.0)
        # Four quarter-discharges cost far less than one full discharge.
        assert shallow.cycles_this_month < deep.cycles_this_month

    def test_depth_capped_at_full(self):
        tracker = BatteryLifetimeTracker()
        tracker.record_discharge(150.0, 100.0)
        assert tracker.cycles_this_month == pytest.approx(1.0)

    def test_depth_exponent_validation(self):
        with pytest.raises(ConfigurationError):
            BatteryLifetimeTracker(depth_wear_exponent=0.5)

    def test_remaining_free_cycles(self):
        tracker = BatteryLifetimeTracker()
        for _ in range(4):
            tracker.record_discharge(100.0, 100.0)
        assert tracker.remaining_free_cycles() == pytest.approx(6.0)

    def test_close_month_rolls_over(self):
        tracker = BatteryLifetimeTracker()
        for _ in range(12):
            tracker.record_discharge(100.0, 100.0)
        excess = tracker.close_month()
        assert excess == pytest.approx(2.0)
        assert tracker.cycles_this_month == 0.0
        assert tracker.months_elapsed == 1
        assert tracker.lifetime_cycles == pytest.approx(12.0)

    def test_reset(self):
        tracker = BatteryLifetimeTracker()
        tracker.record_discharge(100.0, 100.0)
        tracker.close_month()
        tracker.reset()
        assert tracker.lifetime_cycles == 0.0
        assert tracker.months_elapsed == 0


class TestServiceLifeProjection:
    def test_free_usage_keeps_calendar_life(self):
        """Within the free budget, LFP lasts its 8 calendar years and LA
        its 4 (Section III-B)."""
        lfp = BatteryLifetimeTracker(chemistry=BatteryChemistry.LFP)
        la = BatteryLifetimeTracker(chemistry=BatteryChemistry.LEAD_ACID)
        assert lfp.projected_service_life_years(10.0) == 8.0
        assert la.projected_service_life_years(10.0) == 4.0

    def test_heavy_cycling_shortens_life(self):
        tracker = BatteryLifetimeTracker(chemistry=BatteryChemistry.LFP)
        heavy = tracker.projected_service_life_years(100.0)
        assert heavy < 8.0
        assert heavy == pytest.approx(
            RATED_CYCLES[BatteryChemistry.LFP] / (100.0 * 12.0)
        )

    def test_lead_acid_wears_faster(self):
        la = BatteryLifetimeTracker(chemistry=BatteryChemistry.LEAD_ACID)
        lfp = BatteryLifetimeTracker(chemistry=BatteryChemistry.LFP)
        assert la.projected_service_life_years(50.0) < (
            lfp.projected_service_life_years(50.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatteryLifetimeTracker(free_cycles_per_month=0.0)
