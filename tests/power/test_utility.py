"""Tests for utility-feed events and the diesel generator."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.power.utility import (
    DieselGenerator,
    GeneratorState,
    UtilityEvent,
    UtilityEventKind,
    UtilityFeed,
    bridge_outage,
)


class TestUtilityFeed:
    def make_feed(self):
        feed = UtilityFeed(nominal_capacity_w=1000.0)
        feed.add_event(UtilityEvent(UtilityEventKind.OUTAGE, 100.0, 50.0))
        feed.add_event(UtilityEvent(UtilityEventKind.SAG, 300.0, 60.0, 0.7))
        feed.add_event(UtilityEvent(UtilityEventKind.SPIKE, 500.0, 10.0, 1.2))
        return feed

    def test_nominal_when_healthy(self):
        feed = self.make_feed()
        assert feed.available_power_w(0.0) == 1000.0
        assert feed.is_healthy(0.0)

    def test_outage_zeroes_supply(self):
        feed = self.make_feed()
        assert feed.available_power_w(120.0) == 0.0
        assert not feed.is_healthy(120.0)

    def test_event_window_boundaries(self):
        feed = self.make_feed()
        assert feed.available_power_w(99.9) == 1000.0
        assert feed.available_power_w(100.0) == 0.0
        assert feed.available_power_w(150.0) == 1000.0

    def test_sag_scales_supply(self):
        feed = self.make_feed()
        assert feed.available_power_w(320.0) == pytest.approx(700.0)

    def test_spike_raises_load_multiplier(self):
        feed = self.make_feed()
        assert feed.load_multiplier(505.0) == pytest.approx(1.2)
        assert feed.load_multiplier(0.0) == 1.0

    def test_spike_does_not_cut_supply(self):
        feed = self.make_feed()
        assert feed.available_power_w(505.0) == 1000.0

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            UtilityEvent(UtilityEventKind.OUTAGE, -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            UtilityEvent(UtilityEventKind.SAG, 0.0, 0.0)


class TestDieselGenerator:
    def test_startup_sequence(self):
        gen = DieselGenerator(rated_power_w=500.0, startup_time_s=30.0)
        assert gen.state is GeneratorState.OFF
        gen.start()
        assert gen.state is GeneratorState.STARTING
        for _ in range(29):
            gen.step(1.0)
        assert gen.available_power_w() == 0.0
        gen.step(1.0)
        assert gen.state is GeneratorState.RUNNING
        assert gen.available_power_w() == 500.0

    def test_start_is_idempotent(self):
        gen = DieselGenerator(rated_power_w=500.0, startup_time_s=10.0)
        gen.start()
        for _ in range(5):
            gen.step(1.0)
        gen.start()  # must not restart the sequence
        for _ in range(5):
            gen.step(1.0)
        assert gen.state is GeneratorState.RUNNING

    def test_draw_limited_by_rating(self):
        gen = DieselGenerator(rated_power_w=500.0, startup_time_s=1.0)
        gen.start()
        gen.step(1.0)
        assert gen.draw(800.0, 1.0) == pytest.approx(500.0)

    def test_fuel_burn(self):
        gen = DieselGenerator(
            rated_power_w=100.0, startup_time_s=1.0, fuel_capacity_j=250.0
        )
        gen.start()
        gen.step(1.0)
        assert gen.draw(100.0, 1.0) == pytest.approx(100.0)
        assert gen.fuel_j == pytest.approx(150.0)
        gen.draw(100.0, 1.0)
        # Only 50 J left: partial delivery on the third second.
        assert gen.draw(100.0, 1.0) == pytest.approx(50.0)
        assert gen.available_power_w() == 0.0

    def test_stop(self):
        gen = DieselGenerator(rated_power_w=100.0, startup_time_s=1.0)
        gen.start()
        gen.step(1.0)
        gen.stop()
        assert gen.available_power_w() == 0.0

    def test_reset(self):
        gen = DieselGenerator(
            rated_power_w=100.0, startup_time_s=1.0, fuel_capacity_j=100.0
        )
        gen.start()
        gen.step(1.0)
        gen.draw(100.0, 1.0)
        gen.reset()
        assert gen.state is GeneratorState.OFF
        assert gen.fuel_j == pytest.approx(100.0)


class TestBridgeOutage:
    def test_classic_bridge_succeeds(self):
        """Section III-B: the UPS carries the load for the tens of seconds
        the diesel needs to start."""
        gen = DieselGenerator(rated_power_w=1000.0, startup_time_s=30.0)
        # 6 minutes of UPS at the critical load (the paper's sizing).
        steps = bridge_outage(
            critical_load_w=1000.0,
            outage_duration_s=300.0,
            ups_energy_j=1000.0 * 360.0,
            generator=gen,
        )
        assert all(s.served for s in steps)
        # UPS carried the start window, diesel the rest.
        assert steps[10].ups_w == pytest.approx(1000.0)
        assert steps[10].generator_w == 0.0
        assert steps[60].generator_w == pytest.approx(1000.0)
        assert steps[60].ups_w == 0.0

    def test_depleted_ups_fails_the_bridge(self):
        """A UPS drained by sprinting just before an outage cannot bridge
        the diesel start — the operational risk behind keeping a reserve."""
        gen = DieselGenerator(rated_power_w=1000.0, startup_time_s=30.0)
        steps = bridge_outage(
            critical_load_w=1000.0,
            outage_duration_s=60.0,
            ups_energy_j=1000.0 * 5.0,  # five seconds of charge left
            generator=gen,
        )
        assert not all(s.served for s in steps)
        unserved = [s for s in steps if not s.served]
        # The gap opens after the UPS dies and before the diesel is up.
        assert unserved[0].time_s >= 5.0
        assert unserved[-1].time_s < 31.0

    def test_slow_generator_needs_more_ups(self):
        fast = DieselGenerator(rated_power_w=1000.0, startup_time_s=10.0)
        slow = DieselGenerator(rated_power_w=1000.0, startup_time_s=60.0)
        ups_j = 1000.0 * 30.0
        ok_fast = all(
            s.served
            for s in bridge_outage(1000.0, 120.0, ups_j, fast)
        )
        ok_slow = all(
            s.served
            for s in bridge_outage(1000.0, 120.0, ups_j, slow)
        )
        assert ok_fast
        assert not ok_slow
