"""Tests for explicit multi-PDU coordination (Section V-B, skewed load)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BreakerTrippedError, ConfigurationError
from repro.power.coordination import (
    MultiPduTopology,
    allocate_grid_budget,
)
from repro.power.pdu import Pdu


def make_topology(n=4, servers=50):
    pdus = [Pdu(name=f"pdu{i}", n_servers=servers) for i in range(n)]
    rated_total = sum(p.rated_power_w for p in pdus)
    # Substation rated at 90 % of the PDU sum: the parent genuinely binds.
    return MultiPduTopology(pdus=pdus, dc_rated_power_w=rated_total * 0.9)


class TestAllocateGridBudget:
    def test_everything_fits(self):
        grants = allocate_grid_budget(
            demands_w=[100.0, 200.0],
            own_bounds_w=[300.0, 300.0],
            rated_w=[250.0, 250.0],
            parent_budget_w=1000.0,
        )
        assert grants == [100.0, 200.0]

    def test_own_bound_caps_each_child(self):
        grants = allocate_grid_budget(
            demands_w=[500.0, 100.0],
            own_bounds_w=[300.0, 300.0],
            rated_w=[250.0, 250.0],
            parent_budget_w=1000.0,
        )
        assert grants == [300.0, 100.0]

    def test_parent_budget_shrinks_overloads_proportionally(self):
        grants = allocate_grid_budget(
            demands_w=[350.0, 350.0],
            own_bounds_w=[400.0, 400.0],
            rated_w=[250.0, 250.0],
            parent_budget_w=600.0,
        )
        # Within-rating power (250 each) kept whole; 100 of overload budget
        # split across 200 requested: half each.
        assert grants == pytest.approx([300.0, 300.0])
        assert sum(grants) == pytest.approx(600.0)

    def test_increase_on_one_child_decreases_others(self):
        """The paper's invariant: with the parent budget saturated, demand
        growth on one child is paid for by the others."""
        before = allocate_grid_budget(
            [300.0, 300.0], [400.0, 400.0], [250.0, 250.0], 550.0
        )
        after = allocate_grid_budget(
            [380.0, 300.0], [400.0, 400.0], [250.0, 250.0], 550.0
        )
        assert sum(before) == pytest.approx(550.0)
        assert sum(after) == pytest.approx(550.0)
        assert after[0] > before[0]
        assert after[1] < before[1]

    def test_within_rating_never_sacrificed_for_overload(self):
        grants = allocate_grid_budget(
            demands_w=[250.0, 400.0],
            own_bounds_w=[400.0, 400.0],
            rated_w=[250.0, 250.0],
            parent_budget_w=520.0,
        )
        # Child 0 keeps its full within-rating draw.
        assert grants[0] == pytest.approx(250.0)
        assert grants[1] == pytest.approx(270.0)

    def test_severe_shortage_sheds_proportionally(self):
        grants = allocate_grid_budget(
            demands_w=[200.0, 200.0],
            own_bounds_w=[300.0, 300.0],
            rated_w=[250.0, 250.0],
            parent_budget_w=200.0,
        )
        assert grants == pytest.approx([100.0, 100.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            allocate_grid_budget([1.0], [1.0, 2.0], [1.0, 2.0], 10.0)

    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=500.0), min_size=2, max_size=6
        ),
        budget=st.floats(min_value=0.0, max_value=1500.0),
    )
    @settings(max_examples=60)
    def test_invariants_hold_for_random_inputs(self, demands, budget):
        n = len(demands)
        bounds = [400.0] * n
        rated = [250.0] * n
        grants = allocate_grid_budget(demands, bounds, rated, budget)
        assert sum(grants) <= max(budget, 0.0) + 1e-6 or sum(grants) <= sum(
            min(d, b) for d, b in zip(demands, bounds)
        )
        for g, d, b in zip(grants, demands, bounds):
            assert g <= min(d, b) + 1e-9
            assert g >= -1e-9
        assert sum(grants) <= budget + 1e-6


class TestMultiPduTopology:
    def test_skewed_burst_served_by_shifting_budget(self):
        """A burst on one PDU group draws overload budget the idle groups
        are not using."""
        topo = make_topology()
        demands = [topo.pdus[0].rated_power_w * 1.5] + [
            p.peak_normal_power_w * 0.5 for p in topo.pdus[1:]
        ]
        flow = topo.step(demands, cooling_w=0.0, reserve_trip_time_s=60.0, dt_s=1.0)
        assert flow.splits[0].grid_w > topo.pdus[0].rated_power_w
        assert flow.deficit_w == pytest.approx(0.0)

    def test_parent_budget_never_exceeded(self):
        topo = make_topology()
        demands = [p.rated_power_w * 1.6 for p in topo.pdus]
        for t in range(120):
            parent = topo.dc_breaker.max_load_for_trip_time(60.0)
            flow = topo.step(demands, 0.0, 60.0, 1.0)
            assert flow.dc_feed_w <= parent * (1.0 + 1e-9)
        assert not topo.dc_breaker.tripped

    def test_sustained_coordinated_overload_never_trips(self):
        topo = make_topology()
        demands = [p.rated_power_w * 1.4 for p in topo.pdus]
        for t in range(900):
            topo.step(demands, 0.0, 60.0, 1.0)
        assert not topo.dc_breaker.tripped
        assert not any(p.breaker.tripped for p in topo.pdus)

    def test_heterogeneous_groups(self):
        pdus = [
            Pdu(name="big", n_servers=100),
            Pdu(name="small", n_servers=25),
        ]
        topo = MultiPduTopology(
            pdus=pdus,
            dc_rated_power_w=sum(p.rated_power_w for p in pdus),
        )
        flow = topo.step(
            [pdus[0].peak_normal_power_w, pdus[1].peak_normal_power_w],
            0.0,
            60.0,
            1.0,
        )
        assert flow.deficit_w == 0.0
        assert flow.splits[0].grid_w > flow.splits[1].grid_w

    def test_demand_count_validated(self):
        topo = make_topology(n=3)
        with pytest.raises(ConfigurationError):
            topo.step([1.0, 2.0], 0.0, 60.0, 1.0)

    def test_cooling_reduces_child_budget(self):
        topo = make_topology()
        without = topo.coordinated_bounds_w(60.0, 0.0)
        with_cooling = topo.coordinated_bounds_w(60.0, topo.dc_rated_power_w * 0.4)
        assert all(b <= a for a, b in zip(without, with_cooling))

    def test_reset(self):
        topo = make_topology()
        demands = [p.rated_power_w * 1.4 for p in topo.pdus]
        for t in range(60):
            topo.step(demands, 0.0, 60.0, 1.0)
        topo.reset()
        assert topo.dc_breaker.trip_fraction == 0.0
        assert all(p.breaker.trip_fraction == 0.0 for p in topo.pdus)
