"""Tests for the renewable-supply models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.power.renewable import (
    RenewableSupply,
    SolarProfile,
    WindProfile,
    sustainable_power_profile,
)

NOON_S = 12.0 * 3600.0
MIDNIGHT_S = 0.0


class TestSolarProfile:
    def test_zero_at_night(self):
        solar = SolarProfile()
        assert solar.output_fraction(MIDNIGHT_S) == 0.0
        assert solar.output_fraction(22.0 * 3600.0) == 0.0

    def test_peak_at_noon(self):
        solar = SolarProfile(peak_fraction=0.9)
        assert solar.output_fraction(NOON_S) == pytest.approx(0.9)

    def test_symmetric_shoulders(self):
        solar = SolarProfile()
        morning = solar.output_fraction(9.0 * 3600.0)
        afternoon = solar.output_fraction(15.0 * 3600.0)
        assert morning == pytest.approx(afternoon)

    def test_periodic_across_days(self):
        solar = SolarProfile()
        assert solar.output_fraction(NOON_S) == pytest.approx(
            solar.output_fraction(NOON_S + 86_400.0)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SolarProfile(sunrise_s=19 * 3600.0, sunset_s=6 * 3600.0)


class TestWindProfile:
    def test_bounded(self):
        wind = WindProfile()
        for t in range(0, 86_400, 600):
            value = wind.output_fraction(float(t))
            assert wind.floor_fraction <= value <= 1.0

    def test_gusty(self):
        wind = WindProfile()
        values = {round(wind.output_fraction(float(t)), 3)
                  for t in range(0, 20_000, 500)}
        assert len(values) > 10

    def test_deterministic(self):
        a = WindProfile().output_fraction(1234.0)
        b = WindProfile().output_fraction(1234.0)
        assert a == b


class TestRenewableSupply:
    def test_grid_plus_solar(self):
        supply = RenewableSupply(
            grid_power_w=5e6, renewable_nameplate_w=5e6, solar=SolarProfile()
        )
        assert supply.available_power_w(MIDNIGHT_S) == pytest.approx(5e6)
        assert supply.available_power_w(NOON_S) == pytest.approx(10e6)

    def test_renewable_share(self):
        supply = RenewableSupply(
            grid_power_w=5e6, renewable_nameplate_w=5e6, solar=SolarProfile()
        )
        assert supply.renewable_share(MIDNIGHT_S) == 0.0
        assert supply.renewable_share(NOON_S) == pytest.approx(0.5)

    def test_defaults_to_solar(self):
        supply = RenewableSupply(grid_power_w=1e6, renewable_nameplate_w=1e6)
        assert supply.solar is not None

    def test_wind_supply(self):
        supply = RenewableSupply(
            grid_power_w=0.0,
            renewable_nameplate_w=1e6,
            solar=None,
            wind=WindProfile(),
        )
        assert supply.available_power_w(0.0) > 0.0


class TestSustainableProfile:
    def test_profile_normalised_to_peak(self):
        supply = RenewableSupply(grid_power_w=5e6, renewable_nameplate_w=5e6)
        trace = sustainable_power_profile(supply, 86_400.0)
        assert trace.peak == pytest.approx(1.0)
        assert trace.samples.min() == pytest.approx(0.5)

    def test_diurnal_structure(self):
        supply = RenewableSupply(grid_power_w=2e6, renewable_nameplate_w=8e6)
        trace = sustainable_power_profile(supply, 86_400.0, dt_s=600.0)
        noon_idx = int(NOON_S / 600.0)
        assert trace.samples[noon_idx] > trace.samples[0] * 2.0

    def test_zero_supply_rejected(self):
        supply = RenewableSupply(grid_power_w=0.0, renewable_nameplate_w=0.0)
        with pytest.raises(ConfigurationError):
            sustainable_power_profile(supply, 3600.0)
