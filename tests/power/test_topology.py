"""Tests for the hierarchical power topology and its coordination rule."""

from __future__ import annotations

import pytest

from repro.errors import BreakerTrippedError, ConfigurationError
from repro.power.pdu import Pdu
from repro.power.topology import PowerTopology


def make_topology(**kwargs):
    return PowerTopology(**kwargs)


class TestTopologySizing:
    def test_paper_fleet_size(self):
        topo = make_topology()
        assert topo.n_servers == 180_000

    def test_peak_normal_it_power_10mw(self):
        topo = make_topology()
        assert topo.peak_normal_it_power_w == pytest.approx(9.9e6)

    def test_facility_power_with_pue(self):
        topo = make_topology()
        assert topo.peak_normal_facility_power_w == pytest.approx(
            9.9e6 * 1.53
        )

    def test_dc_breaker_rating_includes_headroom(self):
        topo = make_topology(dc_headroom_fraction=0.10)
        assert topo.dc_breaker.rated_power_w == pytest.approx(
            9.9e6 * 1.53 * 1.10
        )

    def test_headroom_sweep_changes_rating(self):
        low = make_topology(dc_headroom_fraction=0.0)
        high = make_topology(dc_headroom_fraction=0.20)
        assert high.dc_breaker.rated_power_w > low.dc_breaker.rated_power_w

    def test_ups_capacity_aggregates(self):
        topo = make_topology()
        assert topo.ups_capacity_j == pytest.approx(180_000 * 19_800.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            make_topology(n_pdus=0)
        with pytest.raises(ConfigurationError):
            make_topology(pue=0.9)


class TestCoordination:
    def test_coordinated_bound_respects_both_levels(self):
        """The Section V-B invariant: children sum within the parent."""
        topo = make_topology()
        cooling = 5.25e6
        bound = topo.coordinated_pdu_bound_w(60.0, cooling)
        assert bound <= topo.pdu_grid_bound_w(60.0) + 1e-9
        total = bound * topo.n_pdus + cooling
        assert total <= topo.dc_grid_bound_w(60.0) * (1.0 + 1e-9)

    def test_parent_binds_when_cooling_is_heavy(self):
        topo = make_topology()
        generous = topo.coordinated_pdu_bound_w(60.0, 0.0)
        squeezed = topo.coordinated_pdu_bound_w(60.0, 12.0e6)
        assert squeezed < generous

    def test_running_at_coordinated_bound_trips_nothing(self):
        topo = make_topology()
        cooling = 5.25e6
        for _ in range(600):
            bound = topo.coordinated_pdu_bound_w(60.0, cooling)
            demand = bound * topo.n_pdus  # exactly at the bound
            topo.step(demand, bound, cooling, 1.0)
        assert not topo.pdu.breaker.tripped
        assert not topo.dc_breaker.tripped

    def test_unbounded_overload_trips_dc_breaker(self):
        topo = make_topology()
        demand = topo.peak_normal_it_power_w * 2.6  # full sprint
        with pytest.raises(BreakerTrippedError):
            for _ in range(600):
                topo.step(demand, demand / topo.n_pdus, 5.25e6, 1.0)


class TestTopologyFlows:
    def test_flow_accounting(self):
        topo = make_topology()
        demand = 12.0e6
        bound = topo.coordinated_pdu_bound_w(60.0, 5.25e6)
        flow = topo.step(demand, bound, 5.25e6, 1.0)
        assert flow.server_demand_w == pytest.approx(demand)
        assert flow.dc_feed_w == pytest.approx(flow.pdu_grid_w + 5.25e6)
        assert flow.pdu_grid_w + flow.ups_w + flow.deficit_w == pytest.approx(
            demand
        )

    def test_representative_pdu_matches_explicit_pdu(self):
        """The O(1) representative-PDU arithmetic equals a real PDU's."""
        topo = make_topology()
        explicit = Pdu(name="explicit")
        demand_total = 14.0e6
        bound = 14_500.0
        flow = topo.step(demand_total, bound, 0.0, 1.0)
        split = explicit.source_power(
            demand_total / topo.n_pdus, bound, 1.0
        )
        assert flow.pdu_grid_w == pytest.approx(split.grid_w * topo.n_pdus)
        assert flow.ups_w == pytest.approx(split.ups_w * topo.n_pdus)

    def test_recharge_scales_to_fleet(self):
        topo = make_topology()
        topo.pdu.ups.discharge_up_to(1e6, 10.0)
        stored = topo.recharge_ups(9.0e5, 10.0)
        assert stored == pytest.approx(9.0e5 * 10.0 * 0.9)

    def test_reset(self):
        topo = make_topology()
        topo.step(14.0e6, 15_000.0, 5.25e6, 30.0)
        topo.reset()
        assert topo.pdu.breaker.trip_fraction == 0.0
        assert topo.dc_breaker.trip_fraction == 0.0
        assert topo.ups_energy_j == pytest.approx(topo.ups_capacity_j)
