"""Tests for the UPS battery and distributed-fleet models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BatteryDepletedError, ConfigurationError
from repro.power.ups import (
    BatteryChemistry,
    DistributedUpsFleet,
    UpsBattery,
    SAFE_FULL_DISCHARGES_PER_MONTH,
)


class TestUpsBattery:
    def test_paper_sizing_six_minutes_at_peak_normal(self):
        """0.5 Ah sustains the 55 W peak-normal server power ~6 minutes."""
        battery = UpsBattery()
        assert battery.runtime_at_power_s(55.0) == pytest.approx(360.0)

    def test_capacity_in_joules(self):
        battery = UpsBattery(capacity_ah=0.5, voltage_v=11.0)
        assert battery.capacity_j == pytest.approx(19_800.0)

    def test_starts_full(self):
        assert UpsBattery().state_of_charge == pytest.approx(1.0)

    def test_discharge_reduces_energy(self):
        battery = UpsBattery()
        delivered = battery.discharge(55.0, 60.0)
        assert delivered == pytest.approx(55.0 * 60.0)
        assert battery.energy_j == pytest.approx(
            battery.capacity_j - delivered
        )

    def test_discharge_beyond_energy_raises(self):
        battery = UpsBattery()
        with pytest.raises(BatteryDepletedError):
            battery.discharge(100.0, 1000.0)

    def test_discharge_beyond_rate_raises(self):
        battery = UpsBattery()
        with pytest.raises(BatteryDepletedError):
            battery.discharge(battery.max_discharge_power_w * 2.0, 1.0)

    def test_discharge_up_to_is_best_effort(self):
        battery = UpsBattery()
        battery.discharge_up_to(55.0, 300.0)
        # Almost drained; the next big request delivers only what remains.
        delivered = battery.discharge_up_to(330.0, 60.0)
        assert delivered < 330.0
        assert battery.is_empty

    def test_discharge_up_to_zero_power(self):
        battery = UpsBattery()
        assert battery.discharge_up_to(0.0, 1.0) == 0.0

    def test_recharge_restores_energy_with_losses(self):
        battery = UpsBattery(efficiency=0.9)
        battery.discharge(55.0, 180.0)
        stored = battery.recharge(100.0, 10.0)
        assert stored == pytest.approx(100.0 * 10.0 * 0.9)

    def test_recharge_saturates_at_capacity(self):
        battery = UpsBattery()
        stored = battery.recharge(1e6, 100.0)
        assert stored == 0.0
        assert battery.state_of_charge == pytest.approx(1.0)

    def test_cycle_accounting(self):
        battery = UpsBattery()
        battery.discharge_up_to(55.0, 360.0)
        assert battery.equivalent_full_cycles == pytest.approx(1.0, rel=1e-6)

    def test_runtime_zero_power_is_infinite(self):
        assert math.isinf(UpsBattery().runtime_at_power_s(0.0))

    def test_runtime_above_rate_limit_is_zero(self):
        battery = UpsBattery()
        assert battery.runtime_at_power_s(battery.max_discharge_power_w * 2) == 0.0

    def test_chemistry_service_life(self):
        assert BatteryChemistry.LEAD_ACID.service_life_years == 4
        assert BatteryChemistry.LFP.service_life_years == 8

    def test_safe_discharge_budget_constant(self):
        assert SAFE_FULL_DISCHARGES_PER_MONTH == 10

    def test_reset(self):
        battery = UpsBattery()
        battery.discharge_up_to(55.0, 100.0)
        battery.reset()
        assert battery.state_of_charge == pytest.approx(1.0)
        assert battery.equivalent_full_cycles == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            UpsBattery(capacity_ah=0.0)
        with pytest.raises(ConfigurationError):
            UpsBattery(efficiency=1.5)

    @given(
        draws=st.lists(
            st.floats(min_value=0.0, max_value=300.0), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40)
    def test_energy_conservation(self, draws):
        """Delivered energy never exceeds the initial capacity."""
        battery = UpsBattery()
        total = 0.0
        for power in draws:
            total += battery.discharge_up_to(power, 10.0) * 10.0
        assert total <= battery.capacity_j * (1.0 + 1e-9)
        assert battery.energy_j >= -1e-9


class TestDistributedUpsFleet:
    def test_aggregates_capacity(self):
        fleet = DistributedUpsFleet(n_batteries=200)
        assert fleet.capacity_j == pytest.approx(200 * 19_800.0)

    def test_discharge_scales(self):
        fleet = DistributedUpsFleet(n_batteries=10)
        delivered = fleet.discharge_up_to(550.0, 60.0)
        assert delivered == pytest.approx(550.0)
        assert fleet.energy_j == pytest.approx(
            fleet.capacity_j - 550.0 * 60.0
        )

    def test_fleet_runtime_matches_single_battery_ratio(self):
        """The fleet drains exactly like one battery under per-server load."""
        fleet = DistributedUpsFleet(n_batteries=200)
        single = UpsBattery()
        fleet.discharge_up_to(55.0 * 200, 100.0)
        single.discharge_up_to(55.0, 100.0)
        assert fleet.state_of_charge == pytest.approx(single.state_of_charge)

    def test_recharge_scales(self):
        fleet = DistributedUpsFleet(n_batteries=10)
        fleet.discharge_up_to(550.0, 60.0)
        stored = fleet.recharge(100.0, 10.0)
        assert stored == pytest.approx(100.0 * 10.0 * 0.9)

    def test_reset(self):
        fleet = DistributedUpsFleet(n_batteries=5)
        fleet.discharge_up_to(100.0, 10.0)
        fleet.reset()
        assert fleet.state_of_charge == pytest.approx(1.0)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            DistributedUpsFleet(n_batteries=0)
