"""Tests for the PDU model: rating, power sourcing splits, UPS fallback."""

from __future__ import annotations

import pytest

from repro.errors import BreakerTrippedError, ConfigurationError
from repro.power.pdu import NEC_PROVISIONING_FACTOR, Pdu


def make_pdu():
    return Pdu(name="pdu0")


class TestPduSizing:
    def test_paper_rating_13_75_kw(self):
        """55 W x 200 servers x 1.25 NEC factor = 13.75 kW (Section VI-A)."""
        assert make_pdu().rated_power_w == pytest.approx(13_750.0)

    def test_peak_normal_power(self):
        assert make_pdu().peak_normal_power_w == pytest.approx(11_000.0)

    def test_nec_factor(self):
        assert NEC_PROVISIONING_FACTOR == pytest.approx(1.25)

    def test_ups_fleet_sized_per_server(self):
        pdu = make_pdu()
        assert pdu.ups.n_batteries == 200

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Pdu(name="bad", n_servers=0)


class TestPduSourcing:
    def test_within_rating_all_from_grid(self):
        pdu = make_pdu()
        split = pdu.source_power(11_000.0, grid_bound_w=13_750.0, dt_s=1.0)
        assert split.grid_w == pytest.approx(11_000.0)
        assert split.ups_w == 0.0
        assert split.fully_served

    def test_demand_above_bound_uses_ups(self):
        pdu = make_pdu()
        split = pdu.source_power(20_000.0, grid_bound_w=15_000.0, dt_s=1.0)
        assert split.grid_w == pytest.approx(15_000.0)
        assert split.ups_w == pytest.approx(5_000.0)
        assert split.fully_served

    def test_deficit_when_ups_empty(self):
        pdu = make_pdu()
        # Drain the fleet (200 x 19.8 kJ = 3.96 MJ); the discharge rate is
        # capped, so empty it at the rate limit over a full minute.
        pdu.ups.discharge_up_to(pdu.ups.available_power_w(), 60.0)
        assert pdu.ups.is_empty
        split = pdu.source_power(20_000.0, grid_bound_w=15_000.0, dt_s=1.0)
        assert split.deficit_w == pytest.approx(5_000.0)
        assert not split.fully_served

    def test_grid_overload_eventually_trips_breaker(self):
        pdu = make_pdu()
        # 60 % overload with no UPS assistance trips in ~60 s.
        with pytest.raises(BreakerTrippedError):
            for _ in range(120):
                pdu.source_power(22_000.0, grid_bound_w=22_000.0, dt_s=1.0)

    def test_grid_bound_honours_reserve(self):
        pdu = make_pdu()
        bound = pdu.grid_power_bound_w(60.0)
        assert pdu.breaker.remaining_trip_time_s(bound) >= 60.0 * (1 - 1e-9)

    def test_recharge_ups(self):
        pdu = make_pdu()
        pdu.ups.discharge_up_to(10_000.0, 10.0)
        stored = pdu.recharge_ups(1_000.0, 10.0)
        assert stored > 0.0

    def test_reset_restores_everything(self):
        pdu = make_pdu()
        pdu.source_power(20_000.0, grid_bound_w=15_000.0, dt_s=30.0)
        pdu.reset()
        assert pdu.breaker.trip_fraction == 0.0
        assert pdu.ups.state_of_charge == pytest.approx(1.0)

    def test_split_drop_fraction_property(self):
        pdu = make_pdu()
        split = pdu.source_power(0.0, grid_bound_w=13_750.0, dt_s=1.0)
        assert split.fully_served
