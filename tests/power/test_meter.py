"""Tests for the power-meter abstraction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.power.meter import PowerMeter


class TestPowerMeter:
    def test_ideal_meter_reads_exactly(self):
        meter = PowerMeter(name="m", noise_std_w=0.0)
        assert meter.sample(123.4, 0.0) == pytest.approx(123.4)
        assert meter.latest_w == pytest.approx(123.4)

    def test_noisy_meter_is_reproducible(self):
        a = PowerMeter(name="a", noise_std_w=1.0, seed=7)
        b = PowerMeter(name="b", noise_std_w=1.0, seed=7)
        readings_a = [a.sample(100.0, float(t)) for t in range(20)]
        readings_b = [b.sample(100.0, float(t)) for t in range(20)]
        assert readings_a == readings_b

    def test_noisy_readings_never_negative(self):
        meter = PowerMeter(name="m", noise_std_w=50.0, seed=3)
        for t in range(200):
            assert meter.sample(1.0, float(t)) >= 0.0

    def test_window_average(self):
        meter = PowerMeter(name="m", window_s=10.0)
        for t in range(5):
            meter.sample(100.0, float(t))
        assert meter.window_average_w == pytest.approx(100.0)

    def test_window_eviction(self):
        meter = PowerMeter(name="m", window_s=10.0)
        meter.sample(500.0, 0.0)
        for t in range(11, 16):
            meter.sample(100.0, float(t))
        assert meter.window_peak_w == pytest.approx(100.0)
        assert meter.n_samples == 5

    def test_window_peak(self):
        meter = PowerMeter(name="m")
        meter.sample(50.0, 0.0)
        meter.sample(150.0, 1.0)
        meter.sample(100.0, 2.0)
        assert meter.window_peak_w == pytest.approx(150.0)

    def test_energy_in_window_trapezoid(self):
        meter = PowerMeter(name="m")
        meter.sample(100.0, 0.0)
        meter.sample(100.0, 10.0)
        assert meter.energy_in_window_j() == pytest.approx(1000.0)

    def test_energy_needs_two_samples(self):
        meter = PowerMeter(name="m")
        assert meter.energy_in_window_j() == 0.0
        meter.sample(100.0, 0.0)
        assert meter.energy_in_window_j() == 0.0

    def test_empty_meter_defaults(self):
        meter = PowerMeter(name="m")
        assert meter.latest_w == 0.0
        assert meter.window_average_w == 0.0
        assert meter.window_peak_w == 0.0

    def test_reset(self):
        meter = PowerMeter(name="m")
        meter.sample(100.0, 0.0)
        meter.reset()
        assert meter.n_samples == 0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            PowerMeter(name="m", window_s=0.0)
        with pytest.raises(ConfigurationError):
            PowerMeter(name="m", noise_std_w=-1.0)
