"""Tests for the circuit-breaker trip-curve and thermal-accumulator model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BreakerTrippedError, ConfigurationError
from repro.power.breaker import (
    CircuitBreaker,
    DEFAULT_TRIP_CONSTANT_S,
    TripCurve,
)


class TestTripCurve:
    def test_paper_calibration_60_percent_one_minute(self):
        curve = TripCurve()
        assert curve.trip_time_s(0.60) == pytest.approx(60.0)

    def test_paper_calibration_30_percent_four_minutes(self):
        curve = TripCurve()
        assert curve.trip_time_s(0.30) == pytest.approx(240.0)

    def test_halving_overload_quadruples_trip_time(self):
        curve = TripCurve()
        assert curve.trip_time_s(0.2) == pytest.approx(
            4.0 * curve.trip_time_s(0.4)
        )

    def test_hold_region_never_trips(self):
        curve = TripCurve()
        assert math.isinf(curve.trip_time_s(0.0))
        assert math.isinf(curve.trip_time_s(curve.hold_threshold))

    def test_magnetic_region_trips_within_one_cycle(self):
        curve = TripCurve()
        t = curve.trip_time_s(curve.instant_trip_multiple - 1.0)
        assert t == curve.instant_trip_time_s

    def test_trip_time_monotone_decreasing(self):
        curve = TripCurve()
        overloads = [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2]
        times = [curve.trip_time_s(o) for o in overloads]
        assert times == sorted(times, reverse=True)

    def test_max_overload_inverts_trip_time(self):
        curve = TripCurve()
        for t in (30.0, 60.0, 240.0, 1000.0):
            o = curve.max_overload_for_trip_time(t)
            assert curve.trip_time_s(o) >= t * (1.0 - 1e-9)

    def test_max_overload_clamps_to_hold_threshold(self):
        curve = TripCurve()
        o = curve.max_overload_for_trip_time(1e9)
        assert o == pytest.approx(curve.hold_threshold, rel=1e-6)
        # The clamped overload must land inside the hold region.
        assert math.isinf(curve.trip_time_s(o))

    def test_max_overload_for_tiny_time_is_magnetic_limit(self):
        curve = TripCurve()
        o = curve.max_overload_for_trip_time(0.01)
        assert o == pytest.approx(curve.instant_trip_multiple - 1.0, rel=1e-6)

    def test_negative_overload_rejected(self):
        with pytest.raises(ConfigurationError):
            TripCurve().trip_time_s(-0.1)

    def test_invalid_curve_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TripCurve(trip_constant_s=0.0)
        with pytest.raises(ConfigurationError):
            TripCurve(instant_trip_multiple=1.0)

    @given(o=st.floats(min_value=0.05, max_value=3.9))
    @settings(max_examples=50)
    def test_round_trip_overload(self, o):
        curve = TripCurve()
        t = curve.trip_time_s(o)
        if math.isfinite(t) and t > curve.instant_trip_time_s:
            recovered = curve.max_overload_for_trip_time(t)
            assert recovered == pytest.approx(o, rel=1e-6)


class TestCircuitBreaker:
    def make(self, rated=1000.0):
        return CircuitBreaker(name="test", rated_power_w=rated)

    def test_within_rating_never_trips(self):
        cb = self.make()
        for _ in range(10_000):
            cb.step(1000.0, 1.0)
        assert not cb.tripped
        assert cb.trip_fraction == 0.0

    def test_constant_overload_trips_at_curve_time(self):
        cb = self.make()
        # 60 % overload trips at 60 s.
        with pytest.raises(BreakerTrippedError) as err:
            for _ in range(100):
                cb.step(1600.0, 1.0)
        assert cb.tripped
        assert err.value.time_s == pytest.approx(59.0, abs=1.5)

    def test_trip_latches(self):
        cb = self.make()
        with pytest.raises(BreakerTrippedError):
            for _ in range(100):
                cb.step(1600.0, 1.0)
        with pytest.raises(BreakerTrippedError):
            cb.step(500.0, 1.0)

    def test_zero_load_after_trip_is_allowed(self):
        cb = self.make()
        with pytest.raises(BreakerTrippedError):
            for _ in range(100):
                cb.step(1600.0, 1.0)
        cb.step(0.0, 1.0)  # open circuit: no error

    def test_remaining_trip_time_shrinks_under_overload(self):
        cb = self.make()
        before = cb.remaining_trip_time_s(1300.0)
        cb.step(1300.0, 30.0)
        after = cb.remaining_trip_time_s(1300.0)
        assert after == pytest.approx(before - 30.0, rel=1e-6)

    def test_cooldown_restores_budget(self):
        cb = self.make()
        cb.step(1600.0, 30.0)  # half the 60 s budget
        consumed = cb.trip_fraction
        assert consumed == pytest.approx(0.5, rel=1e-6)
        cb.step(900.0, cb.cooldown_tau_s)  # one time constant within rating
        assert cb.trip_fraction == pytest.approx(
            consumed * math.exp(-1.0), rel=1e-6
        )

    def test_max_load_for_trip_time_honours_reserve(self):
        cb = self.make()
        load = cb.max_load_for_trip_time(60.0)
        assert cb.remaining_trip_time_s(load) >= 60.0 * (1.0 - 1e-9)
        # 60 s reserve on a cold breaker = 60 % overload.
        assert load == pytest.approx(1600.0, rel=1e-6)

    def test_max_load_decreases_as_budget_burns(self):
        cb = self.make()
        bound0 = cb.max_load_for_trip_time(60.0)
        cb.step(bound0, 20.0)
        bound1 = cb.max_load_for_trip_time(60.0)
        assert bound1 < bound0

    def test_running_at_reserve_bound_never_trips(self):
        cb = self.make()
        for _ in range(3600):
            cb.step(cb.max_load_for_trip_time(60.0), 1.0)
        assert not cb.tripped
        # The bound converges to the hold region, sustainable forever.
        final_bound = cb.max_load_for_trip_time(60.0)
        assert final_bound >= cb.rated_power_w

    def test_magnetic_load_trips_instantly(self):
        cb = self.make()
        with pytest.raises(BreakerTrippedError):
            cb.step(6000.0, 1.0)

    def test_reset(self):
        cb = self.make()
        with pytest.raises(BreakerTrippedError):
            for _ in range(100):
                cb.step(1600.0, 1.0)
        cb.reset()
        assert not cb.tripped
        assert cb.trip_fraction == 0.0
        cb.step(1600.0, 1.0)  # usable again

    def test_time_varying_overload_accumulates(self):
        """Alternating overloads consume budget additively."""
        cb = self.make()
        # 15 s at 60 % (quarter budget) + 60 s at 30 % (quarter budget).
        cb.step(1600.0, 15.0)
        cb.step(1300.0, 60.0)
        assert cb.trip_fraction == pytest.approx(0.5, rel=1e-6)

    def test_overload_fraction(self):
        cb = self.make()
        assert cb.overload_fraction(1500.0) == pytest.approx(0.5)
        assert cb.overload_fraction(800.0) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(name="bad", rated_power_w=0.0)

    @given(
        loads=st.lists(
            st.floats(min_value=0.0, max_value=1550.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=30)
    def test_trip_fraction_stays_in_unit_interval(self, loads):
        cb = self.make()
        for load in loads:
            try:
                cb.step(load, 1.0)
            except BreakerTrippedError:
                break
        assert 0.0 <= cb.trip_fraction <= 1.0


class TestHoldRegionEquilibrium:
    """UL489's hold region is an equilibrium: the bimetal element neither
    heats nor cools while the load sits between 100 % and 104 % of rating.

    Regression test for a bug where the hold region was treated like idle
    load and silently decayed the accumulated trip fraction, letting a
    sprint that parked at 100-104 % of rating launder away its thermal
    history.
    """

    def make(self, rated=1000.0):
        return CircuitBreaker(name="test", rated_power_w=rated)

    def heat(self, cb, fraction=0.5):
        """Burn roughly ``fraction`` of the trip budget with a 60 % overload."""
        while cb.trip_fraction < fraction:
            cb.step(1600.0, 1.0)
        return cb.trip_fraction

    def test_exactly_rated_load_holds_flat(self):
        cb = self.make()
        h = self.heat(cb)
        for _ in range(600):
            cb.step(1000.0, 1.0)
        assert cb.trip_fraction == h

    def test_hold_region_top_holds_flat(self):
        cb = self.make()
        h = self.heat(cb)
        for _ in range(600):
            cb.step(1040.0, 1.0)
        assert cb.trip_fraction == h
        assert not cb.tripped

    def test_strictly_below_rated_still_cools(self):
        cb = self.make()
        h = self.heat(cb)
        cb.step(999.0, 60.0)
        assert cb.trip_fraction < h
        expected = h * math.exp(-60.0 / cb.cooldown_tau_s)
        assert cb.trip_fraction == pytest.approx(expected)

    def test_hold_then_overload_trips_sooner_than_cold(self):
        """The preserved history shortens the next overload's trip time."""
        cb = self.make()
        self.heat(cb, 0.5)
        cb.step(1040.0, 300.0)  # park in the hold region
        remaining_hot = cb.remaining_trip_time_s(1600.0)
        cold = self.make()
        assert remaining_hot < cold.remaining_trip_time_s(1600.0) / 1.9


class TestTripLatchSemantics:
    def make(self, rated=1000.0):
        return CircuitBreaker(name="test", rated_power_w=rated)

    def test_latched_breaker_at_zero_load_advances_time(self):
        cb = self.make()
        with pytest.raises(BreakerTrippedError):
            cb.step(5000.1, 1.0)
        before = cb._time_s
        cb.step(0.0, 5.0)  # de-energised branch: no raise
        assert cb._time_s == before + 5.0
        assert cb.tripped

    def test_latched_breaker_raises_on_any_positive_load(self):
        cb = self.make()
        with pytest.raises(BreakerTrippedError):
            cb.step(5000.1, 1.0)
        with pytest.raises(BreakerTrippedError):
            cb.step(1e-9, 1.0)

    def test_tripped_at_interpolates_inside_the_step(self):
        """A 60 % overload trips at exactly 60 s even when the step size
        does not divide the trip time."""
        cb = self.make()
        for _ in range(8):
            cb.step(1600.0, 7.0)  # 56 s of heating
        with pytest.raises(BreakerTrippedError):
            cb.step(1600.0, 7.0)  # budget runs out 4 s into this step
        assert cb.tripped_at_s == pytest.approx(60.0)

    def test_trip_error_carries_interpolated_time(self):
        cb = self.make()
        for _ in range(8):
            cb.step(1600.0, 7.0)
        with pytest.raises(BreakerTrippedError) as excinfo:
            cb.step(1600.0, 7.0)
        assert excinfo.value.time_s == pytest.approx(60.0)
        assert excinfo.value.breaker_name == "test"


class TestMaxLoadNearExhaustion:
    def make(self, rated=1000.0):
        return CircuitBreaker(name="test", rated_power_w=rated)

    def test_exhausted_budget_bound_stays_below_rating(self):
        """With zero thermal budget left (but not yet tripped), carrying
        exactly the rating would hold ``trip_fraction`` at 1.0 forever —
        one rounding wobble from a trip.  The bound backs off to the
        largest float strictly below the rating so the overload ratio
        dips under 1.0 and the accumulated fraction starts decaying."""
        cb = self.make()
        cb.trip_fraction = 1.0
        bound = cb.max_load_for_trip_time(60.0)
        assert bound == math.nextafter(cb.rated_power_w, 0.0)
        assert bound < cb.rated_power_w
        # Stepping at the bound is indefinitely sustainable and lets the
        # thermal budget recover instead of pinning it at the trip point.
        cb.step(bound, dt_s=1.0)
        assert not cb.tripped
        assert cb.trip_fraction < 1.0

    def test_nearly_exhausted_budget_falls_back_to_hold_region(self):
        cb = self.make()
        cb.trip_fraction = 1.0 - 1e-9
        bound = cb.max_load_for_trip_time(60.0)
        assert cb.rated_power_w <= bound
        assert bound <= cb.rated_power_w * (1.0 + cb.curve.hold_threshold)
        # The returned bound is indefinitely sustainable.
        assert math.isinf(cb.remaining_trip_time_s(bound))

    def test_bound_is_continuous_toward_exhaustion(self):
        """The bound decreases monotonically as the budget burns away."""
        cb = self.make()
        bounds = []
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0 - 1e-9):
            cb.trip_fraction = fraction
            bounds.append(cb.max_load_for_trip_time(60.0))
        assert bounds == sorted(bounds, reverse=True)
        assert all(b >= cb.rated_power_w for b in bounds)


class TestFaultInjectionHooks:
    def make(self, rated=1000.0):
        return CircuitBreaker(name="test", rated_power_w=rated)

    def test_force_trip_latches_open(self):
        cb = self.make()
        cb.force_trip(42.0)
        assert cb.tripped
        assert cb.trip_fraction == 1.0
        assert cb.tripped_at_s == 42.0
        with pytest.raises(BreakerTrippedError):
            cb.step(100.0, 1.0)

    def test_force_trip_defaults_to_internal_clock(self):
        cb = self.make()
        cb.step(1000.0, 30.0)
        cb.force_trip()
        assert cb.tripped_at_s == 30.0

    def test_force_trip_clears_on_reset(self):
        cb = self.make()
        cb.force_trip()
        cb.reset()
        assert not cb.tripped
        assert cb.trip_fraction == 0.0
        cb.step(1000.0, 1.0)

    def test_derate_scales_rating(self):
        cb = self.make(rated=1000.0)
        cb.derate(0.5)
        assert cb.rated_power_w == 500.0
        # The old rated load is now a 100 % overload: magnetic or thermal
        # territory, consuming budget immediately.
        cb.step(1000.0, 1.0)
        assert cb.trip_fraction > 0.0

    def test_derate_rejects_out_of_range_factors(self):
        cb = self.make()
        with pytest.raises(ConfigurationError):
            cb.derate(0.0)
        with pytest.raises(ConfigurationError):
            cb.derate(1.5)
        with pytest.raises(ConfigurationError):
            cb.derate(-0.1)
