"""Property suite: every strategy's snapshot/restore round-trips exactly.

The snapshot/fork engine (and therefore the shared-prefix Oracle search
and the MPC rollout planner) relies on ``snapshot_state`` /
``restore_state`` being an exact inverse pair on *every* strategy, at any
point of any episode.  Hypothesis drives each strategy through randomized
sequences of the operations a controller can apply — observations,
realized-degree feedback, budget-scale updates and resets — snapshots
mid-sequence, keeps mutating, restores, and demands the re-captured state
compare equal with ``==`` (plain tuples of floats/bools: bit-for-bit).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.adaptive import (
    AdaptivePredictionStrategy,
    RecedingHorizonStrategy,
)
from repro.core.strategies import (
    FixedUpperBoundStrategy,
    GreedyStrategy,
    HeuristicStrategy,
    MPCStrategy,
    PredictionStrategy,
    StrategyObservation,
    UpperBoundTable,
)
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.workloads.forecasting import BurstDurationEstimator

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

#: One shared cluster: strategies only read its pure power/capacity model.
_CLUSTER = build_datacenter(SMALL).cluster


def _table() -> UpperBoundTable:
    table = UpperBoundTable()
    table.set(300.0, 3.2, 4.0)
    table.set(600.0, 3.2, 3.0)
    table.set(900.0, 3.2, 2.5)
    return table


STRATEGY_FACTORIES = {
    "greedy": GreedyStrategy,
    "fixed": lambda: FixedUpperBoundStrategy(2.5),
    "prediction": lambda: PredictionStrategy(_table(), 900.0),
    "heuristic": lambda: HeuristicStrategy(
        2.4, _CLUSTER.additional_power_at_degree_w
    ),
    "adaptive-prediction": lambda: AdaptivePredictionStrategy(_table()),
    "receding-horizon": lambda: RecedingHorizonStrategy(
        _CLUSTER, predicted_burst_duration_s=900.0
    ),
    "receding-horizon-estimator": lambda: RecedingHorizonStrategy(
        _CLUSTER, estimator=BurstDurationEstimator(prior_duration_s=600.0)
    ),
    "mpc": lambda: MPCStrategy(
        candidate_bounds=(2.0, 3.0, 4.0), horizon_s=600.0
    ),
}

_finite = dict(allow_nan=False, allow_infinity=False)

OBSERVATIONS = st.builds(
    StrategyObservation,
    time_s=st.floats(min_value=0.0, max_value=1e4, **_finite),
    demand=st.floats(min_value=0.0, max_value=4.0, **_finite),
    in_burst=st.booleans(),
    time_in_burst_s=st.floats(min_value=0.0, max_value=2e3, **_finite),
    budget_fraction_remaining=st.floats(min_value=0.0, max_value=1.0, **_finite),
    max_degree=st.just(4.0),
)

#: One controller-shaped operation on a strategy.
OPERATIONS = st.one_of(
    st.tuples(st.just("observe"), OBSERVATIONS),
    st.tuples(
        st.just("notify"),
        st.floats(min_value=0.0, max_value=4.0, **_finite),
        st.floats(min_value=0.1, max_value=5.0, **_finite),
        st.booleans(),
    ),
    st.tuples(
        st.just("budget"),
        st.floats(min_value=0.0, max_value=1e9, **_finite),
    ),
    st.tuples(st.just("reset")),
)

OPERATION_SEQUENCES = st.lists(OPERATIONS, max_size=25)


def _apply(strategy, op) -> None:
    if op[0] == "observe":
        strategy.degree_upper_bound(op[1])
    elif op[0] == "notify":
        strategy.notify_realized(op[1], op[2], op[3])
    elif op[0] == "budget":
        # Duck-typed, exactly as the controller does it at burst start.
        scale = getattr(strategy, "set_budget_scale", None)
        if scale is not None:
            scale(op[1])
    else:
        strategy.reset()


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("kind", sorted(STRATEGY_FACTORIES))
    @given(prefix=OPERATION_SEQUENCES, suffix=OPERATION_SEQUENCES)
    @settings(
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_restore_inverts_any_mutation(self, kind, prefix, suffix):
        """snapshot → arbitrary further ops → restore → snapshot equal."""
        strategy = STRATEGY_FACTORIES[kind]()
        for op in prefix:
            _apply(strategy, op)
        state = strategy.snapshot_state()
        for op in suffix:
            _apply(strategy, op)
        strategy.restore_state(state)
        assert strategy.snapshot_state() == state

    @pytest.mark.parametrize("kind", sorted(STRATEGY_FACTORIES))
    @given(ops=OPERATION_SEQUENCES, probe=OBSERVATIONS)
    @settings(
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_restored_strategy_reproduces_the_next_bound(
        self, kind, ops, probe
    ):
        """Beyond state equality: the restored strategy *behaves* the same
        on the next observation as the original would have."""
        strategy = STRATEGY_FACTORIES[kind]()
        for op in ops:
            _apply(strategy, op)
        state = strategy.snapshot_state()
        expected = strategy.degree_upper_bound(probe)
        strategy.restore_state(state)
        assert strategy.degree_upper_bound(probe) == expected

    @pytest.mark.parametrize("kind", sorted(STRATEGY_FACTORIES))
    def test_fresh_snapshot_restores_onto_fresh_instance(self, kind):
        """A snapshot taken from one instance restores onto another —
        what the rollout planner's surrogate controllers rely on."""
        factory = STRATEGY_FACTORIES[kind]
        source, target = factory(), factory()
        target.restore_state(source.snapshot_state())
        assert target.snapshot_state() == source.snapshot_state()
