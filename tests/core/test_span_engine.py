"""Differential suite for the span-compiled trace engine.

``StepKernel.run_trace`` compiles per-sample stepping into per-span
stepping with steady-cycle fast-forward; its contract (like the rest of
the kernel) is *bit-identity* with the reference controller.  This suite
drives randomized traces built of long constant-demand spans — the shape
the span engine accelerates — through every strategy kind the repo ships,
with and without fault plans, and asserts every per-step telemetry field
and every accumulator matches the reference exactly.  It also pins:

* an explicit k>1 steady cycle (PCM melt/refreeze oscillation) actually
  replaying through :meth:`~repro.core.steplog.StepLog.extend_cycle`;
* the fault-plan fast-forward invalidation (the engine disarms the k=1
  latch before applying due fault events);
* the vector kernel's per-element quiescent latch arming, replaying
  bit-identically, and disarming on demand changes and external writes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.steplog import StepLog
from repro.core.strategies import FixedUpperBoundStrategy, GreedyStrategy
from repro.simulation.batch_facility import BatchFacility
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import run_simulation
from repro.simulation.faults import FaultEvent, FaultPlan
from repro.workloads.traces import Trace

from tests.core.test_kernel_differential import (
    SMALL,
    assert_results_identical,
)
from tests.core.test_strategy_state_property import STRATEGY_FACTORIES

STRATEGY_KINDS = tuple(STRATEGY_FACTORIES)


def span_trace(seed: int, n: int = 600, dt_s: float = 1.0) -> Trace:
    """A randomized trace made of long constant-demand spans.

    Mixes sub-capacity plateaus (idle fixed points), above-capacity
    plateaus (burst plateaus), and occasional single-sample jitter so
    span boundaries, burst edges and degenerate one-sample spans are all
    exercised.
    """
    rng = np.random.default_rng(seed)
    parts = []
    total = 0
    while total < n:
        kind = rng.integers(0, 10)
        if kind < 5:
            level = float(rng.uniform(0.2, 0.95))
            length = int(rng.integers(20, 160))
        elif kind < 8:
            level = float(rng.uniform(1.1, 3.5))
            length = int(rng.integers(10, 80))
        else:
            level = float(rng.uniform(0.0, 3.5))
            length = 1
        parts.append(np.full(min(length, n - total), level))
        total += length
    return Trace(np.concatenate(parts)[:n], dt_s=dt_s, name=f"spans-{seed}")


def run_both(trace, strategy_kind, fault_plan=None):
    fast = run_simulation(
        build_datacenter(SMALL),
        trace,
        STRATEGY_FACTORIES[strategy_kind](),
        fault_plan=fault_plan,
        use_kernel=True,
    )
    ref = run_simulation(
        build_datacenter(SMALL),
        trace,
        STRATEGY_FACTORIES[strategy_kind](),
        fault_plan=fault_plan,
        use_kernel=False,
    )
    return fast, ref


class TestSpanView:
    def test_spans_roundtrip(self):
        trace = span_trace(7)
        spans = trace.spans()
        rebuilt = np.concatenate(
            [np.full(s.length, s.demand) for s in spans]
        )
        assert np.array_equal(rebuilt, trace.samples)
        assert spans[0].start == 0
        assert spans[-1].end == len(trace)
        for a, b in zip(spans, spans[1:]):
            assert a.end == b.start
            assert a.demand != b.demand

    def test_span_stats_constant_trace(self):
        trace = Trace(np.full(100, 0.5), dt_s=1.0, name="flat")
        stats = trace.span_stats()
        assert stats.n_samples == 100
        assert stats.n_spans == 1
        assert stats.mean_length == 100.0
        assert stats.max_length == 100
        assert stats.predicted_ff_coverage == pytest.approx(0.99)

    def test_span_stats_alternating_trace(self):
        trace = Trace(
            np.tile([0.3, 0.7], 50), dt_s=1.0, name="alternating"
        )
        stats = trace.span_stats()
        assert stats.n_spans == 100
        assert stats.mean_length == 1.0
        assert stats.predicted_ff_coverage == 0.0


class TestSpanDifferential:
    @pytest.mark.parametrize("kind", STRATEGY_KINDS)
    def test_all_strategy_kinds(self, kind):
        fast, ref = run_both(span_trace(3), kind)
        assert_results_identical(fast, ref)

    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_many_seeds(self, seed):
        fast, ref = run_both(span_trace(seed), "greedy")
        assert_results_identical(fast, ref)

    @pytest.mark.parametrize("kind", ("greedy", "fixed", "mpc"))
    def test_with_fault_plan(self, kind):
        plan = FaultPlan(
            events=(
                FaultEvent(kind="ups_failure", time_s=150.0),
                FaultEvent(kind="chiller_outage", time_s=320.0,
                           fraction=0.5),
            )
        )
        fast, ref = run_both(span_trace(5), kind, fault_plan=plan)
        assert_results_identical(fast, ref)

    def test_fault_mid_constant_span_disarm(self):
        """Satellite: a due fault event must disarm the k=1 latch.

        A long flat trace arms the quiescent fast-forward; the fault at
        t=200 lands mid-span, where a stale latch would replay pre-fault
        state.  The engine clears it before applying due events, so the
        faulted run stays bit-identical to the reference.
        """
        trace = Trace(np.full(500, 0.6), dt_s=1.0, name="flat-faulted")
        plan = FaultPlan(
            events=(FaultEvent(kind="breaker_derate", time_s=200.0,
                               fraction=0.4),)
        )
        fast, ref = run_both(trace, "greedy", fault_plan=plan)
        assert_results_identical(fast, ref)

    def test_fault_application_clears_fast_forward(self, monkeypatch):
        """The engine calls clear_fast_forward when events come due."""
        from repro.core.controller import SprintingController

        calls = []
        original = SprintingController.clear_fast_forward

        def spy(self):
            calls.append(True)
            original(self)

        monkeypatch.setattr(
            SprintingController, "clear_fast_forward", spy
        )
        trace = Trace(np.full(300, 0.6), dt_s=1.0, name="flat")
        plan = FaultPlan(
            events=(FaultEvent(kind="ups_failure", time_s=100.0),)
        )
        run_simulation(
            build_datacenter(SMALL),
            trace,
            GreedyStrategy(),
            fault_plan=plan,
            use_kernel=True,
        )
        assert calls, "fault application never disarmed the fast-forward"


class TestSteadyCycle:
    def test_k1_cycle_replays_in_bulk(self, monkeypatch):
        """An idle fixed point inside a span goes through extend_cycle."""
        replays = []
        original = StepLog.extend_cycle

        def spy(self, steps, repeats, times=None):
            replays.append((len(steps), repeats))
            original(self, steps, repeats, times)

        monkeypatch.setattr(StepLog, "extend_cycle", spy)
        trace = Trace(np.full(400, 0.5), dt_s=1.0, name="flat")
        fast, ref = run_both(trace, "greedy")
        assert_results_identical(fast, ref)
        assert replays, "no bulk replay on a 400-sample constant trace"
        assert sum(k * r for k, r in replays) > 300

    def test_k_greater_than_one_pcm_cycle(self, monkeypatch):
        """PCM melt/refreeze oscillation forms a k>1 steady cycle.

        With a tiny PCM latent budget and demand just above capacity the
        chip sprints, exhausts the sink, caps to 1.0, refreezes, and
        sprints again — a multi-step periodic orbit inside one constant-
        demand span.  The orbit is float-exact because the PCM saturates
        at both ends (fully melted, fully solid); the sprint must stay
        within breaker ratings and chiller capacity so no other state
        (trip fractions, room temperature) drifts asymptotically.  The
        span engine must detect the period and replay whole cycles
        bit-identically.
        """
        replays = []
        original = StepLog.extend_cycle

        def spy(self, steps, repeats, times=None):
            replays.append((len(steps), repeats))
            original(self, steps, repeats, times)

        monkeypatch.setattr(StepLog, "extend_cycle", spy)
        config = DataCenterConfig(
            n_pdus=2,
            servers_per_pdu=50,
            has_tes=False,
            chiller_margin=4.0,
            enforce_chip_thermal=True,
            chip_sprint_endurance_min=0.005,
        )
        trace = Trace(np.full(400, 1.1), dt_s=1.0, name="pcm-cycle")
        strategy = GreedyStrategy()
        fast = run_simulation(
            build_datacenter(config), trace, strategy, use_kernel=True
        )
        ref = run_simulation(
            build_datacenter(config), trace, GreedyStrategy(),
            use_kernel=False,
        )
        assert_results_identical(fast, ref)
        multi = [(k, r) for k, r in replays if k > 1]
        assert multi, (
            f"expected a k>1 cycle replay, got only {replays!r}"
        )
        assert max(k for k, _ in multi) >= 5


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    kind=st.sampled_from(STRATEGY_KINDS),
    with_fault=st.booleans(),
)
def test_span_engine_property(seed, kind, with_fault):
    """Property: span-compiled runs are bit-identical to the reference
    for every strategy kind, on random long-constant-span traces, with
    and without fault plans."""
    trace = span_trace(seed, n=420)
    plan = None
    if with_fault:
        rng = np.random.default_rng(seed + 1)
        kinds = ("ups_failure", "chiller_outage", "breaker_derate",
                 "tes_valve_stuck")
        plan = FaultPlan(
            events=tuple(
                FaultEvent(
                    kind=kinds[int(rng.integers(0, len(kinds)))],
                    time_s=float(rng.integers(30, 390)),
                )
                for _ in range(int(rng.integers(1, 3)))
            )
        )
    fast, ref = run_both(trace, kind, fault_plan=plan)
    assert_results_identical(fast, ref)


class TestVectorLatch:
    BOUNDS = (1.0, 1.8, 2.6, 3.4)

    def _flat_trace(self, n=400, level=0.5):
        return Trace(np.full(n, level), dt_s=1.0, name="flat")

    def _run_unlatched(self, facility, trace, **kwargs):
        """Reference batch run with the latch tracking suppressed."""
        from repro.core.vector_kernel import VectorStepKernel

        original = VectorStepKernel.step

        def no_latch(self, demand, time_s):
            self._ff_last_demand = None
            self._ff_armed = False
            self._ff_cache = None
            self._ff_sig = None
            return original(self, demand, time_s)

        VectorStepKernel.step = no_latch
        try:
            return facility.run_fixed_bounds(trace, list(self.BOUNDS),
                                             **kwargs)
        finally:
            VectorStepKernel.step = original

    def test_arms_and_replays_bit_identically(self):
        trace = self._flat_trace()
        latched = BatchFacility(SMALL).run_fixed_bounds(
            trace, list(self.BOUNDS), record_telemetry=True
        )
        plain = self._run_unlatched(
            BatchFacility(SMALL), trace, record_telemetry=True
        )
        k1, k2 = latched.kernel, plain.kernel
        assert k1._ff_armed, "constant demand never armed the latch"
        assert np.array_equal(latched.served, plain.served)
        assert np.array_equal(k1.served_integral, k2.served_integral)
        assert np.array_equal(k1.dropped_integral, k2.dropped_integral)
        assert np.array_equal(k1.demand_integral, k2.demand_integral)
        assert np.array_equal(
            k1.cb_overload_energy_j, k2.cb_overload_energy_j
        )
        assert np.array_equal(k1.ups_energy_j, k2.ups_energy_j)
        assert np.array_equal(
            k1.tes_electric_energy_j, k2.tes_electric_energy_j
        )
        for code in range(4):
            assert np.array_equal(
                k1.time_in_phase_s[code], k2.time_in_phase_s[code]
            )
        assert np.array_equal(k1.pdu.time_s, k2.pdu.time_s)
        assert np.array_equal(k1.dc.time_s, k2.dc.time_s)
        assert k1.telemetry is not None and k2.telemetry is not None
        for name in k1.telemetry:
            assert np.array_equal(
                np.vstack(k1.telemetry[name]),
                np.vstack(k2.telemetry[name]),
                equal_nan=True,
            ), name

    def test_step_trace_bit_identity(self):
        """A burst-and-plateau trace: latch on plateaus, disarm on edges."""
        samples = np.concatenate(
            [np.full(150, 0.5), np.full(100, 1.6), np.full(150, 0.5)]
        )
        trace = Trace(samples, dt_s=1.0, name="plateaus")
        latched = BatchFacility(SMALL).run_fixed_bounds(
            trace, list(self.BOUNDS), record_telemetry=True
        )
        plain = self._run_unlatched(
            BatchFacility(SMALL), trace, record_telemetry=True
        )
        assert np.array_equal(latched.served, plain.served)
        k1, k2 = latched.kernel, plain.kernel
        assert k1.telemetry is not None and k2.telemetry is not None
        for name in k1.telemetry:
            assert np.array_equal(
                np.vstack(k1.telemetry[name]),
                np.vstack(k2.telemetry[name]),
                equal_nan=True,
            ), name

    def test_demand_change_disarms(self):
        from repro.simulation.datacenter import build_datacenter as build

        dc = build(SMALL)
        ctrl = dc.controller(FixedUpperBoundStrategy(1.0))
        from repro.core.vector_kernel import VectorStepKernel

        kernel = VectorStepKernel(
            dc.cluster, dc.topology, dc.cooling, ctrl,
            np.asarray(self.BOUNDS),
        )
        for i in range(10):
            kernel.step(0.5, float(i))
        assert kernel._ff_armed
        kernel.step(0.9, 10.0)
        assert not kernel._ff_armed

    def test_clear_fast_forward_after_external_write(self):
        """External derates must be preceded by clear_fast_forward."""
        from repro.core.vector_kernel import VectorStepKernel
        from repro.simulation.datacenter import build_datacenter as build

        def make_kernel():
            dc = build(SMALL)
            ctrl = dc.controller(FixedUpperBoundStrategy(1.0))
            return VectorStepKernel(
                dc.cluster, dc.topology, dc.cooling, ctrl,
                np.asarray(self.BOUNDS),
            )

        mutated = make_kernel()
        for i in range(10):
            mutated.step(0.5, float(i))
        assert mutated._ff_armed
        mutated.battery_energy_j = mutated.battery_energy_j * 0.5
        mutated.clear_fast_forward()
        assert not mutated._ff_armed
        out_mutated = [
            mutated.step(0.5, float(10 + i)) for i in range(5)
        ]

        fresh = make_kernel()
        for i in range(10):
            fresh.step(0.5, float(i))
        fresh._ff_armed = False
        fresh._ff_cache = None
        fresh._ff_sig = None
        fresh._ff_last_demand = None
        fresh.battery_energy_j = fresh.battery_energy_j * 0.5
        out_fresh = [fresh.step(0.5, float(10 + i)) for i in range(5)]
        for a, b in zip(out_mutated, out_fresh):
            assert np.array_equal(a, b)
        assert np.array_equal(
            mutated.battery_energy_j, fresh.battery_energy_j
        )
