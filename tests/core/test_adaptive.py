"""Tests for the adaptive and optimization-based strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import (
    AdaptivePredictionStrategy,
    RecedingHorizonStrategy,
)
from repro.core.strategies import GreedyStrategy, UpperBoundTable
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import (
    oracle_for_trace,
    simulate_strategy,
)
from repro.workloads.forecasting import BurstDurationEstimator
from repro.workloads.traces import Trace
from repro.workloads.yahoo_trace import generate_yahoo_trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)
CANDIDATES = (2.0, 2.5, 3.0, 3.5, 4.0)


def make_table():
    table = UpperBoundTable()
    table.set(60.0, 3.0, 4.0)
    table.set(300.0, 3.0, 4.0)
    table.set(600.0, 3.0, 3.0)
    table.set(900.0, 3.0, 2.5)
    return table


def repeated_burst_trace(n_episodes=3, burst_s=600, gap_s=400, level=3.0):
    episode = [0.7] * gap_s + [level] * burst_s
    values = episode * n_episodes + [0.7] * gap_s
    return Trace(np.asarray(values, dtype=float), 1.0, "repeated")


class TestAdaptivePrediction:
    def test_learns_across_episodes(self):
        """Later bursts are handled with a learned duration estimate; the
        adaptive strategy ends up beating Greedy overall."""
        trace = repeated_burst_trace()
        adaptive = simulate_strategy(
            trace, AdaptivePredictionStrategy(make_table()), SMALL
        )
        greedy = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert adaptive.average_performance > greedy.average_performance

    def test_estimator_history_populated(self):
        trace = repeated_burst_trace(n_episodes=2)
        strategy = AdaptivePredictionStrategy(make_table())
        simulate_strategy(trace, strategy, SMALL)
        # At least the first episode completed and was recorded.
        assert strategy.estimator.historical_mean_s != pytest.approx(
            strategy.estimator.prior_duration_s
        ) or len(strategy.estimator._history) > 0

    def test_prior_drives_first_episode(self):
        estimator = BurstDurationEstimator(prior_duration_s=900.0)
        strategy = AdaptivePredictionStrategy(make_table(), estimator)
        assert strategy.predicted_burst_duration_s == pytest.approx(900.0)

    def test_reset_clears_learning(self):
        strategy = AdaptivePredictionStrategy(make_table())
        strategy.estimator.record_completed_burst(100.0)
        strategy.reset()
        assert strategy.estimator.historical_mean_s == pytest.approx(
            strategy.estimator.prior_duration_s
        )


class TestRecedingHorizon:
    def cluster(self):
        return build_datacenter(SMALL).cluster

    def test_matches_greedy_on_short_bursts(self):
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=5)
        rh = simulate_strategy(
            trace,
            RecedingHorizonStrategy(
                self.cluster(),
                predicted_burst_duration_s=trace.over_capacity_time_s(),
            ),
            SMALL,
        )
        greedy = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert rh.average_performance == pytest.approx(
            greedy.average_performance, rel=0.03
        )

    def test_beats_greedy_on_long_bursts(self):
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)
        rh = simulate_strategy(
            trace,
            RecedingHorizonStrategy(
                self.cluster(),
                predicted_burst_duration_s=trace.over_capacity_time_s(),
            ),
            SMALL,
        )
        greedy = simulate_strategy(trace, GreedyStrategy(), SMALL)
        assert rh.average_performance > greedy.average_performance * 1.05

    def test_competitive_with_constant_bound_oracle(self):
        trace = generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)
        rh = simulate_strategy(
            trace,
            RecedingHorizonStrategy(
                self.cluster(),
                predicted_burst_duration_s=trace.over_capacity_time_s(),
            ),
            SMALL,
        )
        oracle = oracle_for_trace(trace, SMALL, candidates=CANDIDATES)
        assert rh.average_performance >= oracle.achieved_performance * 0.97

    def test_unconstrained_outside_bursts(self):
        from repro.core.strategies import StrategyObservation

        strategy = RecedingHorizonStrategy(self.cluster())
        obs = StrategyObservation(
            time_s=0.0,
            demand=0.5,
            in_burst=False,
            time_in_burst_s=0.0,
            budget_fraction_remaining=1.0,
            max_degree=4.0,
        )
        assert strategy.degree_upper_bound(obs) == 4.0

    def test_zero_energy_plans_degree_one(self):
        from repro.core.strategies import StrategyObservation

        strategy = RecedingHorizonStrategy(
            self.cluster(), predicted_burst_duration_s=600.0
        )
        strategy.set_budget_scale(0.0)
        obs = StrategyObservation(
            time_s=0.0,
            demand=3.0,
            in_burst=True,
            time_in_burst_s=0.0,
            budget_fraction_remaining=1.0,
            max_degree=4.0,
        )
        assert strategy.degree_upper_bound(obs) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecedingHorizonStrategy(
                self.cluster(), predicted_burst_duration_s=0.0
            )
        with pytest.raises(ConfigurationError):
            RecedingHorizonStrategy(self.cluster(), candidate_degrees=[])
