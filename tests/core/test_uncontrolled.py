"""Tests for the uncontrolled chip-level sprinting baseline."""

from __future__ import annotations

import pytest

from repro.core.uncontrolled import UncontrolledSprinting
from repro.simulation.datacenter import build_datacenter


class TestUncontrolled:
    def test_below_capacity_never_trips(self, small_datacenter):
        baseline = small_datacenter.uncontrolled()
        for t in range(600):
            baseline.step(0.9, float(t))
        assert not baseline.shut_down

    def test_sustained_burst_trips_and_shuts_down(self, small_datacenter):
        baseline = small_datacenter.uncontrolled()
        tripped_at = None
        for t in range(1200):
            step = baseline.step(2.6, float(t))
            if step.shut_down and tripped_at is None:
                tripped_at = t
        assert baseline.shut_down
        assert baseline.trip_time_s is not None
        # A 2.6x burst overloads the PDU breakers far beyond the hold
        # region; the trip lands within a few minutes.
        assert tripped_at < 600

    def test_after_trip_everything_is_dark(self, small_datacenter):
        baseline = small_datacenter.uncontrolled()
        for t in range(1200):
            baseline.step(2.6, float(t))
        step = baseline.step(0.5, 1201.0)
        assert step.served == 0.0
        assert step.capacity == 0.0
        assert step.shut_down

    def test_stop_before_trip_avoids_shutdown(self, small_datacenter):
        """The cautious operator aborts chip sprinting and limps along at
        normal capacity instead of going dark."""
        baseline = small_datacenter.uncontrolled(stop_before_trip=True)
        served = []
        for t in range(1200):
            served.append(baseline.step(2.6, float(t)).served)
        assert not baseline.shut_down
        # After the abort only normal capacity remains.
        assert served[-1] == pytest.approx(1.0)
        # But early on the full sprint performance was delivered.
        assert max(served) > 1.5

    def test_demand_following_degree(self, small_datacenter):
        baseline = small_datacenter.uncontrolled()
        step = baseline.step(1.8, 0.0)
        expected = small_datacenter.cluster.degree_for_demand(1.8)
        assert step.degree == pytest.approx(expected)

    def test_reset(self, small_datacenter):
        baseline = small_datacenter.uncontrolled()
        for t in range(1200):
            baseline.step(2.6, float(t))
        baseline.reset()
        assert not baseline.shut_down
        assert baseline.trip_time_s is None
        assert baseline.history == []
        step = baseline.step(0.9, 0.0)
        assert step.served == pytest.approx(0.9)
