"""Tests for admission control."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionController, AdmissionDecision


class TestAdmissionController:
    def test_serves_within_capacity(self):
        ctrl = AdmissionController()
        decision = ctrl.admit(0.8, 1.0, 1.0)
        assert decision.served == pytest.approx(0.8)
        assert decision.dropped == 0.0
        assert decision.drop_fraction == 0.0

    def test_drops_excess(self):
        ctrl = AdmissionController()
        decision = ctrl.admit(3.0, 2.0, 1.0)
        assert decision.served == pytest.approx(2.0)
        assert decision.dropped == pytest.approx(1.0)
        assert decision.drop_fraction == pytest.approx(1.0 / 3.0)

    def test_integrals_accumulate(self):
        ctrl = AdmissionController()
        ctrl.admit(3.0, 2.0, 10.0)
        ctrl.admit(1.0, 2.0, 10.0)
        assert ctrl.demand_integral == pytest.approx(40.0)
        assert ctrl.served_integral == pytest.approx(30.0)
        assert ctrl.dropped_integral == pytest.approx(10.0)
        assert ctrl.overall_drop_fraction == pytest.approx(0.25)

    def test_zero_demand(self):
        ctrl = AdmissionController()
        decision = ctrl.admit(0.0, 1.0, 1.0)
        assert decision.drop_fraction == 0.0
        assert ctrl.overall_drop_fraction == 0.0

    def test_paper_example_greedy_vs_constrained(self):
        """Section V-A's worked example: a 10-minute burst where Greedy
        sustains 6 minutes drops ~40 %, while handling 80 % of demand for
        9 minutes drops ~28 % of the excess requests."""
        demand = 2.0  # burst demand (excess = 1.0 above normal)

        greedy = AdmissionController()
        for minute in range(10):
            capacity = 2.0 if minute < 6 else 1.0
            greedy.admit(demand, capacity, 60.0)
        # Dropped: 4 minutes x 1.0 excess over 10 x 2.0 = 20 %;
        # relative to the *excess* requests it is 40 %.
        excess_drop_greedy = greedy.dropped_integral / (10 * 60.0 * 1.0)
        assert excess_drop_greedy == pytest.approx(0.40)

        constrained = AdmissionController()
        for minute in range(10):
            capacity = 1.8 if minute < 9 else 1.0
            constrained.admit(demand, capacity, 60.0)
        excess_drop_constrained = constrained.dropped_integral / (10 * 60.0)
        assert excess_drop_constrained == pytest.approx(0.28)

    def test_reset(self):
        ctrl = AdmissionController()
        ctrl.admit(3.0, 2.0, 1.0)
        ctrl.reset()
        assert ctrl.demand_integral == 0.0
        assert ctrl.overall_drop_fraction == 0.0

    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_served_plus_dropped_equals_demand(self, pairs):
        ctrl = AdmissionController()
        for demand, capacity in pairs:
            ctrl.admit(demand, capacity, 1.0)
        assert ctrl.served_integral + ctrl.dropped_integral == pytest.approx(
            ctrl.demand_integral
        )
        assert 0.0 <= ctrl.overall_drop_fraction <= 1.0
