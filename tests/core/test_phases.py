"""Tests for sprint-phase classification and accounting."""

from __future__ import annotations

import pytest

from repro.core.phases import PhaseTracker, SprintPhase, classify_phase


class TestClassifyPhase:
    def test_idle_when_not_sprinting(self):
        assert classify_phase(False, 0.0, 0.0) is SprintPhase.IDLE
        # Even with residual flows, not sprinting means idle.
        assert classify_phase(False, 10.0, 10.0) is SprintPhase.IDLE

    def test_phase1_cb_only(self):
        assert classify_phase(True, 0.0, 0.0) is SprintPhase.PHASE1_CB

    def test_phase2_ups_discharging(self):
        assert classify_phase(True, 100.0, 0.0) is SprintPhase.PHASE2_UPS

    def test_phase3_tes_dominates(self):
        assert classify_phase(True, 100.0, 50.0) is SprintPhase.PHASE3_TES

    def test_is_sprinting_property(self):
        assert not SprintPhase.IDLE.is_sprinting
        assert SprintPhase.PHASE1_CB.is_sprinting
        assert SprintPhase.PHASE2_UPS.is_sprinting
        assert SprintPhase.PHASE3_TES.is_sprinting


class TestPhaseTracker:
    def test_time_accounting(self):
        tracker = PhaseTracker()
        tracker.record(SprintPhase.PHASE1_CB, 10.0)
        tracker.record(SprintPhase.PHASE2_UPS, 5.0)
        tracker.record(SprintPhase.IDLE, 100.0)
        assert tracker.time_in_phase_s[SprintPhase.PHASE1_CB] == 10.0
        assert tracker.total_sprinting_time_s == pytest.approx(15.0)

    def test_energy_shares(self):
        tracker = PhaseTracker()
        tracker.record(
            SprintPhase.PHASE3_TES,
            10.0,
            cb_overload_power_w=10.0,
            ups_power_w=54.0,
            tes_electric_power_w=36.0,
        )
        shares = tracker.energy_shares()
        assert shares["ups"] == pytest.approx(0.54)
        assert shares["tes"] == pytest.approx(0.36)
        assert shares["cb"] == pytest.approx(0.10)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_energy_shares_zero_before_any_energy(self):
        shares = PhaseTracker().energy_shares()
        assert shares == {"cb": 0.0, "ups": 0.0, "tes": 0.0}

    def test_additional_energy_total(self):
        tracker = PhaseTracker()
        tracker.record(
            SprintPhase.PHASE2_UPS, 2.0, cb_overload_power_w=3.0, ups_power_w=7.0
        )
        assert tracker.additional_energy_j == pytest.approx(20.0)

    def test_current_phase_tracks_latest(self):
        tracker = PhaseTracker()
        tracker.record(SprintPhase.PHASE1_CB, 1.0)
        tracker.record(SprintPhase.PHASE3_TES, 1.0)
        assert tracker.current_phase is SprintPhase.PHASE3_TES

    def test_reset(self):
        tracker = PhaseTracker()
        tracker.record(SprintPhase.PHASE1_CB, 1.0, cb_overload_power_w=5.0)
        tracker.reset()
        assert tracker.additional_energy_j == 0.0
        assert tracker.total_sprinting_time_s == 0.0
        assert tracker.current_phase is SprintPhase.IDLE
