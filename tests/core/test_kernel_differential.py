"""Differential validation of the precomputed step kernel.

The :class:`~repro.core.kernel.StepKernel` is a hand-inlined fast path
that must replicate the reference controller's sequence of floating-point
operations *exactly* — not approximately.  Every test here drives the same
inputs through both paths (``use_kernel=True`` vs ``False``) and asserts
element-wise equality on all per-step telemetry, the admission integrals,
the phase-tracker accumulators and the fault records.  Any relaxation to
``approx`` would defeat the point: the kernel's contract is bit-identity.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.controller import ControllerSettings, SprintingController
from repro.core.strategies import FixedUpperBoundStrategy, GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import run_simulation
from repro.simulation.faults import FaultEvent, FaultPlan
from repro.workloads.traces import Trace

#: Small facility: same per-server ratios as the paper config, cheap to run.
SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def random_trace(seed: int, n: int = 420, dt_s: float = 1.0) -> Trace:
    """A randomised demand trace with idle stretches and hard bursts."""
    rng = np.random.default_rng(seed)
    base = 0.55 + 0.3 * rng.random(n)
    # A couple of rectangular bursts of random degree and duration.
    for _ in range(rng.integers(1, 4)):
        start = int(rng.integers(0, n - 40))
        length = int(rng.integers(20, 120))
        base[start:start + length] += rng.uniform(0.8, 3.0)
    return Trace(np.clip(base, 0.0, 4.5), dt_s=dt_s, name=f"random-{seed}")


def assert_results_identical(fast, ref):
    """Every observable of the two runs must match bit-for-bit."""
    assert len(fast.steps) == len(ref.steps)
    # StepLog equality is column-wise np.array_equal — exact, NaN-aware.
    assert fast.steps == ref.steps
    assert fast.energy_shares == ref.energy_shares
    assert fast.time_in_phase_s == ref.time_in_phase_s
    assert fast.dropped_integral == ref.dropped_integral
    assert fast.served_integral == ref.served_integral
    assert fast.demand_integral == ref.demand_integral
    assert fast.aborted_at_s == ref.aborted_at_s
    assert fast.fault_events == ref.fault_events


class TestKernelMatchesReference:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_greedy(self, seed):
        trace = random_trace(seed)
        fast = run_simulation(
            build_datacenter(SMALL), trace, GreedyStrategy(), use_kernel=True
        )
        ref = run_simulation(
            build_datacenter(SMALL), trace, GreedyStrategy(), use_kernel=False
        )
        assert_results_identical(fast, ref)

    @pytest.mark.parametrize("seed", (10, 11, 12))
    @pytest.mark.parametrize("bound", (2.0, 3.5))
    def test_random_traces_fixed_bound(self, seed, bound):
        trace = random_trace(seed)
        strategy = FixedUpperBoundStrategy(bound)
        fast = run_simulation(
            build_datacenter(SMALL), trace, strategy, use_kernel=True
        )
        ref = run_simulation(
            build_datacenter(SMALL), trace, strategy, use_kernel=False
        )
        assert_results_identical(fast, ref)

    def test_ms_trace_full_facility(self, ms_trace):
        """The golden workload on the paper-size facility."""
        fast = run_simulation(
            build_datacenter(), ms_trace, GreedyStrategy(), use_kernel=True
        )
        ref = run_simulation(
            build_datacenter(), ms_trace, GreedyStrategy(), use_kernel=False
        )
        assert_results_identical(fast, ref)

    @pytest.mark.parametrize("seed", (20, 21))
    def test_with_fault_plan(self, seed):
        """Fault injection and graceful degradation follow the same path."""
        trace = random_trace(seed, n=360)
        plan = FaultPlan((
            FaultEvent.parse("breaker@90s:fraction=0.5"),
            FaultEvent.parse("chiller@180s:fraction=0.5,duration=60"),
        ))
        fast = run_simulation(
            build_datacenter(SMALL), trace, GreedyStrategy(),
            fault_plan=plan, use_kernel=True,
        )
        ref = run_simulation(
            build_datacenter(SMALL), trace, GreedyStrategy(),
            fault_plan=plan, use_kernel=False,
        )
        assert_results_identical(fast, ref)

    def test_ups_outage_reserve(self):
        """The UPS-floor constraint must bind identically in both paths."""
        trace = random_trace(30)
        settings = ControllerSettings(ups_outage_reserve_fraction=0.4)
        steps = {}
        for use_kernel in (True, False):
            dc = build_datacenter(SMALL)
            controller = SprintingController(
                cluster=dc.cluster,
                topology=dc.topology,
                cooling=dc.cooling,
                strategy=GreedyStrategy(),
                settings=settings,
                use_kernel=use_kernel,
            )
            for i, demand in enumerate(trace):
                controller.step(demand, float(i))
            steps[use_kernel] = controller.history.snapshot()
        assert steps[True] == steps[False]

    def test_quiescent_fast_forward_engages_and_matches(self):
        """Flat demand is the fast-forward sweet spot: after the first
        repeated quiescent sample the kernel replays a cached step.  The
        replayed telemetry must still match the reference bit-for-bit,
        and the cache must actually have engaged (otherwise this test
        would silently stop covering the replay path)."""
        flat = Trace(np.full(600, 0.8), dt_s=1.0, name="flat")
        histories = {}
        for use_kernel in (True, False):
            dc = build_datacenter(SMALL)
            controller = SprintingController(
                cluster=dc.cluster,
                topology=dc.topology,
                cooling=dc.cooling,
                strategy=FixedUpperBoundStrategy(3.0),
                use_kernel=use_kernel,
            )
            for i, demand in enumerate(flat):
                controller.step(demand, float(i))
            if use_kernel:
                assert controller._ff_step is not None
            histories[use_kernel] = controller.history.snapshot()
        assert histories[True] == histories[False]

    def test_fast_forward_cache_invalidated_by_burst(self):
        """A burst breaks the fixed point; post-burst steps must still be
        identical to the reference (the cache re-arms with fresh state)."""
        values = np.concatenate([
            np.full(120, 0.8), np.full(90, 2.4), np.full(240, 0.8)
        ])
        trace = Trace(values, dt_s=1.0, name="flat-burst-flat")
        fast = run_simulation(
            build_datacenter(SMALL), trace,
            FixedUpperBoundStrategy(3.0), use_kernel=True,
        )
        ref = run_simulation(
            build_datacenter(SMALL), trace,
            FixedUpperBoundStrategy(3.0), use_kernel=False,
        )
        assert_results_identical(fast, ref)

    def test_per_field_equality_is_exact(self):
        """Spot-check that equality above really is field-by-field exact."""
        trace = random_trace(40, n=240)
        fast = run_simulation(
            build_datacenter(SMALL), trace, GreedyStrategy(), use_kernel=True
        )
        ref = run_simulation(
            build_datacenter(SMALL), trace, GreedyStrategy(), use_kernel=False
        )
        for a, b in zip(fast.steps, ref.steps):
            for field in dataclasses.fields(a):
                va, vb = getattr(a, field.name), getattr(b, field.name)
                if isinstance(va, float):
                    assert va == vb or (
                        math.isnan(va) and math.isnan(vb)
                    ), field.name
                else:
                    assert va == vb, field.name
