"""Tests for the UPS outage-reserve option."""

from __future__ import annotations

import pytest

from repro.core.controller import ControllerSettings, SprintingController
from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.power.utility import DieselGenerator, bridge_outage
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def run_with_reserve(reserve_fraction, seconds=900, demand=3.0):
    dc = build_datacenter(SMALL)
    controller = SprintingController(
        cluster=dc.cluster,
        topology=dc.topology,
        cooling=dc.cooling,
        strategy=GreedyStrategy(),
        settings=ControllerSettings(
            ups_outage_reserve_fraction=reserve_fraction
        ),
    )
    for t in range(seconds):
        controller.step(demand, float(t))
    return dc, controller


class TestUpsReserve:
    def test_reserve_never_breached(self):
        dc, _ = run_with_reserve(0.5)
        assert dc.topology.pdu.ups.state_of_charge >= 0.5 - 1e-9

    def test_zero_reserve_drains_fully(self):
        dc, _ = run_with_reserve(0.0)
        assert dc.topology.pdu.ups.state_of_charge < 0.05

    def test_reserve_shortens_the_sprint(self):
        _, without = run_with_reserve(0.0)
        _, with_reserve = run_with_reserve(0.5)
        served_without = without.admission.served_integral
        served_with = with_reserve.admission.served_integral
        assert served_with < served_without

    def test_reserved_energy_still_bridges_an_outage(self):
        """The point of the reserve: even right after a hard sprint, the
        protected energy carries the critical load through the diesel
        start."""
        dc, _ = run_with_reserve(0.5)
        remaining_j = dc.topology.ups_energy_j
        critical_load_w = dc.cluster.peak_normal_power_w
        generator = DieselGenerator(
            rated_power_w=critical_load_w, startup_time_s=30.0
        )
        steps = bridge_outage(
            critical_load_w=critical_load_w,
            outage_duration_s=120.0,
            ups_energy_j=remaining_j,
            generator=generator,
        )
        assert all(s.served for s in steps)

    def test_unreserved_facility_cannot_bridge_after_sprint(self):
        dc, _ = run_with_reserve(0.0)
        remaining_j = dc.topology.ups_energy_j
        critical_load_w = dc.cluster.peak_normal_power_w
        generator = DieselGenerator(
            rated_power_w=critical_load_w, startup_time_s=30.0
        )
        steps = bridge_outage(
            critical_load_w=critical_load_w,
            outage_duration_s=120.0,
            ups_energy_j=remaining_j,
            generator=generator,
        )
        assert not all(s.served for s in steps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerSettings(ups_outage_reserve_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ControllerSettings(ups_outage_reserve_fraction=-0.1)
