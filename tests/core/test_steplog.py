"""Unit tests for the column-oriented step log.

:class:`~repro.core.steplog.StepLog` replaced the controller's plain
``List[ControlStep]``, so these tests pin the list-compatibility contract
every existing consumer relies on: append/len/truthiness, integer and
negative indexing, slicing, iteration, equality against lists and other
logs, ``clear``, independent snapshots, and the fast column reads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import ControlStep
from repro.core.phases import SprintPhase
from repro.core.steplog import _INITIAL_CAPACITY, StepLog


def make_step(i: int, phase=SprintPhase.IDLE, in_burst=False) -> ControlStep:
    base = float(i)
    return ControlStep(
        time_s=base,
        demand=base + 0.1,
        upper_bound=base + 0.2,
        degree=base + 0.3,
        capacity=base + 0.4,
        served=base + 0.5,
        dropped=base + 0.6,
        phase=phase,
        in_burst=in_burst,
        it_power_w=base + 0.7,
        grid_w=base + 0.8,
        ups_w=base + 0.9,
        cb_overload_w=base + 1.0,
        tes_heat_w=base + 1.1,
        tes_electric_saved_w=base + 1.2,
        cooling_electric_w=base + 1.3,
        room_temperature_c=base + 1.4,
        pdu_grid_bound_w=base + 1.5,
    )


@pytest.fixture()
def filled():
    log = StepLog()
    steps = [
        make_step(i, phase=list(SprintPhase)[i % len(SprintPhase)],
                  in_burst=bool(i % 2))
        for i in range(7)
    ]
    for step in steps:
        log.append(step)
    return log, steps


class TestListCompatibility:
    def test_len_and_truthiness(self, filled):
        log, steps = filled
        assert len(log) == len(steps)
        assert bool(log)
        assert not StepLog()
        assert len(StepLog()) == 0

    def test_rows_roundtrip_exactly(self, filled):
        log, steps = filled
        for i, expected in enumerate(steps):
            assert log[i] == expected

    def test_negative_indexing(self, filled):
        log, steps = filled
        assert log[-1] == steps[-1]
        assert log[-len(steps)] == steps[0]

    def test_out_of_range_raises(self, filled):
        log, steps = filled
        with pytest.raises(IndexError):
            log[len(steps)]
        with pytest.raises(IndexError):
            log[-len(steps) - 1]

    def test_slicing_returns_step_list(self, filled):
        log, steps = filled
        assert log[2:5] == steps[2:5]
        assert log[::2] == steps[::2]
        assert log[:] == steps

    def test_iteration(self, filled):
        log, steps = filled
        assert list(log) == steps
        assert log.to_list() == steps

    def test_equality_against_list_and_log(self, filled):
        log, steps = filled
        assert log == steps
        assert StepLog() == []
        other = StepLog()
        for step in steps:
            other.append(step)
        assert log == other
        other.append(make_step(99))
        assert log != other

    def test_clear_empties_the_log(self, filled):
        log, _ = filled
        log.clear()
        assert len(log) == 0
        assert log == []

    def test_phase_and_burst_roundtrip(self):
        log = StepLog()
        for phase in SprintPhase:
            log.append(make_step(0, phase=phase, in_burst=True))
        assert [s.phase for s in log] == list(SprintPhase)
        assert all(s.in_burst for s in log)


class TestColumns:
    def test_column_matches_attribute_walk(self, filled):
        log, steps = filled
        expected = np.array([s.degree for s in steps])
        assert np.array_equal(log.column("degree"), expected)

    def test_in_burst_and_sprinting_columns(self, filled):
        log, steps = filled
        assert np.array_equal(
            log.column("in_burst"), np.array([s.in_burst for s in steps])
        )
        assert np.array_equal(
            log.column("sprinting"),
            np.array([s.degree > 1.0 + 1e-6 for s in steps]),
        )

    def test_unknown_column_raises(self, filled):
        log, _ = filled
        with pytest.raises(KeyError):
            log.column("no_such_field")

    def test_column_is_a_copy(self, filled):
        log, steps = filled
        col = log.column("served")
        col[0] = -123.0
        assert log[0].served == steps[0].served


class TestBulkExtend:
    """``reserve`` / ``extend_cycle`` keep the list-of-steps contract."""

    def _cycle(self):
        return [
            make_step(i, phase=list(SprintPhase)[i % len(SprintPhase)],
                      in_burst=bool(i % 2))
            for i in range(3)
        ]

    def test_extend_cycle_matches_repeated_append(self):
        steps = self._cycle()
        bulk = StepLog()
        bulk.extend_cycle(steps, 5)
        plain = StepLog()
        for _ in range(5):
            for step in steps:
                plain.append(step)
        assert bulk == plain
        assert bulk.to_list() == plain.to_list()
        assert len(bulk) == 15

    def test_extend_cycle_after_appends(self):
        steps = self._cycle()
        log = StepLog()
        log.append(make_step(42))
        log.extend_cycle(steps, 2)
        assert log[0] == make_step(42)
        assert log[1:] == steps * 2

    def test_times_override_time_column(self):
        steps = self._cycle()
        times = np.arange(6, dtype=np.float64) * 10.0
        log = StepLog()
        log.extend_cycle(steps, 2, times)
        assert np.array_equal(log.column("time_s"), times)
        # every other field still tiles the cached steps
        assert [s.served for s in log] == [s.served for s in steps] * 2
        assert [s.phase for s in log] == [s.phase for s in steps] * 2

    def test_times_size_mismatch_raises(self):
        steps = self._cycle()
        with pytest.raises(ValueError):
            StepLog().extend_cycle(steps, 2, np.zeros(5))

    def test_zero_total_is_a_noop(self):
        log = StepLog()
        log.extend_cycle([], 5)
        log.extend_cycle(self._cycle(), 0)
        assert len(log) == 0
        assert log == []

    def test_extend_cycle_grows_past_capacity(self):
        steps = self._cycle()
        repeats = _INITIAL_CAPACITY // len(steps) + 10
        log = StepLog()
        log.extend_cycle(steps, repeats)
        assert len(log) == len(steps) * repeats
        assert log[-1] == steps[-1]
        assert log[0] == steps[0]

    def test_reserve_preserves_rows(self):
        log = StepLog()
        steps = self._cycle()
        for step in steps:
            log.append(step)
        log.reserve(_INITIAL_CAPACITY * 4)
        assert log == steps
        log.append(make_step(9))
        assert log[-1] == make_step(9)


class TestGrowthAndSnapshots:
    def test_grows_past_initial_capacity(self):
        log = StepLog()
        n = _INITIAL_CAPACITY + 10
        for i in range(n):
            log.append(make_step(i % 50))
        assert len(log) == n
        assert log[-1] == make_step((n - 1) % 50)

    def test_snapshot_is_independent(self, filled):
        log, steps = filled
        snap = log.snapshot()
        log.append(make_step(42))
        log.clear()
        assert snap == steps
        assert len(snap) == len(steps)
