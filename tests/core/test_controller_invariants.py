"""Deeper per-step invariants of the sprinting controller."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


class TestStepInvariants:
    def run_steps(self, demands):
        dc = build_datacenter(SMALL)
        controller = dc.controller(GreedyStrategy())
        steps = [
            controller.step(demand, float(t))
            for t, demand in enumerate(demands)
        ]
        return dc, controller, steps

    def test_grid_power_within_coordinated_bound(self):
        dc, _, steps = self.run_steps([2.6] * 300)
        for step in steps:
            per_pdu = step.grid_w / dc.topology.n_pdus
            assert per_pdu <= step.pdu_grid_bound_w * (1.0 + 1e-6)

    def test_power_balance_every_step(self):
        """Grid + UPS covers the committed IT power exactly."""
        _, _, steps = self.run_steps([0.7] * 30 + [2.6] * 120)
        for step in steps:
            if step.in_burst:
                # During bursts no recharge runs: the balance is exact.
                assert step.grid_w + step.ups_w == pytest.approx(
                    step.it_power_w, rel=1e-9
                )

    def test_served_equals_min_demand_capacity(self):
        _, _, steps = self.run_steps([1.8] * 60)
        for step in steps:
            assert step.served == pytest.approx(
                min(step.demand, step.capacity)
            )

    def test_sprinting_flag_matches_degree(self):
        _, _, steps = self.run_steps([0.8] * 10 + [2.0] * 10)
        for step in steps:
            assert step.sprinting == (step.degree > 1.0 + 1e-6)

    def test_negative_demand_rejected(self):
        dc = build_datacenter(SMALL)
        controller = dc.controller(GreedyStrategy())
        with pytest.raises(ConfigurationError):
            controller.step(-0.1, 0.0)

    def test_tes_empty_falls_back_to_chiller_and_derates(self):
        """Once the tank is dry mid-burst, sprinting winds down toward the
        thermally sustainable degree instead of overheating."""
        dc = build_datacenter(SMALL)
        dc.cooling.tes.absorb_up_to(dc.cooling.tes.max_discharge_w, 1e9)
        controller = dc.controller(GreedyStrategy())
        for t in range(1500):
            controller.step(3.0, float(t))
        room = dc.cooling.room
        assert room.peak_temperature_c < room.threshold_c
        late = [s.degree for s in controller.history[-120:]]
        safe_degree = dc.cluster.degree_for_power(
            dc.cooling.chiller.max_chiller_heat_w()
        )
        assert max(late) <= safe_degree + 0.05

    def test_long_idle_recharges_to_full(self):
        dc = build_datacenter(SMALL)
        dc.topology.pdu.ups.discharge_up_to(
            dc.topology.pdu.ups.available_power_w(), 30.0
        )
        controller = dc.controller(GreedyStrategy())
        for t in range(3600):
            controller.step(0.5, float(t))
        assert dc.topology.pdu.ups.state_of_charge == pytest.approx(
            1.0, abs=1e-3
        )

    def test_recharge_does_not_overload_breakers(self):
        dc = build_datacenter(SMALL)
        dc.topology.pdu.ups.discharge_up_to(
            dc.topology.pdu.ups.available_power_w(), 30.0
        )
        controller = dc.controller(GreedyStrategy())
        for t in range(600):
            controller.step(0.95, float(t))
        assert dc.topology.pdu.breaker.trip_fraction < 1e-6


class TestCoolingEstimateConsistency:
    @given(
        it_mw=st.floats(min_value=0.0, max_value=26.0),
        use_tes=st.booleans(),
        preheat_s=st.integers(min_value=0, max_value=300),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_estimate_always_matches_step(self, it_mw, use_tes, preheat_s):
        """Under any plant state, estimate() and step() agree on electric
        power — the property the breaker budgets rely on."""
        from repro.cooling.crac import CoolingPlant
        from repro.cooling.tes import TesTank

        plant = CoolingPlant(
            peak_normal_it_power_w=9.9e6, tes=TesTank.sized_for(9.9e6)
        )
        if preheat_s:
            plant.step(20.0e6, float(preheat_s), use_tes=False,
                       raise_on_emergency=False)
        estimate = plant.estimate(it_mw * 1e6, 1.0, use_tes)
        actual = plant.step(it_mw * 1e6, 1.0, use_tes,
                            raise_on_emergency=False)
        assert actual.electric_power_w == pytest.approx(
            estimate.electric_power_w
        )
        assert actual.heat_via_tes_w == pytest.approx(
            estimate.heat_via_tes_w
        )
