"""Tests for the three-phase sprinting controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import ControllerSettings, SprintingController
from repro.core.phases import SprintPhase
from repro.core.strategies import FixedUpperBoundStrategy, GreedyStrategy
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter


def run_constant_demand(datacenter, demand, seconds, strategy=None):
    controller = datacenter.controller(strategy or GreedyStrategy())
    steps = [controller.step(demand, float(t)) for t in range(seconds)]
    return controller, steps


class TestNormalOperation:
    def test_idle_below_capacity(self, small_datacenter):
        _, steps = run_constant_demand(small_datacenter, 0.8, 30)
        assert all(s.phase is SprintPhase.IDLE for s in steps)
        assert all(s.served == pytest.approx(0.8) for s in steps)
        assert all(s.dropped == 0.0 for s in steps)

    def test_no_breaker_stress_below_capacity(self, small_datacenter):
        run_constant_demand(small_datacenter, 0.9, 120)
        assert small_datacenter.topology.pdu.breaker.trip_fraction == 0.0

    def test_idle_recharges_drained_ups(self, small_datacenter):
        small_datacenter.topology.pdu.ups.discharge_up_to(500.0, 60.0)
        before = small_datacenter.topology.pdu.ups.state_of_charge
        run_constant_demand(small_datacenter, 0.5, 60)
        after = small_datacenter.topology.pdu.ups.state_of_charge
        assert after > before

    def test_recharge_can_be_disabled(self, small_datacenter):
        small_datacenter.topology.pdu.ups.discharge_up_to(500.0, 60.0)
        before = small_datacenter.topology.pdu.ups.state_of_charge
        controller = SprintingController(
            cluster=small_datacenter.cluster,
            topology=small_datacenter.topology,
            cooling=small_datacenter.cooling,
            strategy=GreedyStrategy(),
            settings=ControllerSettings(recharge_when_idle=False),
        )
        for t in range(60):
            controller.step(0.5, float(t))
        assert small_datacenter.topology.pdu.ups.state_of_charge == (
            pytest.approx(before)
        )


class TestSprinting:
    def test_burst_triggers_sprinting(self, small_datacenter):
        _, steps = run_constant_demand(small_datacenter, 2.0, 30)
        assert steps[-1].sprinting
        assert steps[-1].degree > 1.0
        assert steps[-1].served > 1.0

    def test_served_matches_capacity_of_degree(self, small_datacenter):
        _, steps = run_constant_demand(small_datacenter, 2.0, 10)
        step = steps[-1]
        expected = small_datacenter.cluster.capacity_at_degree(step.degree)
        assert step.served == pytest.approx(min(step.demand, expected))

    def test_phase_progression_cb_then_ups(self, small_datacenter):
        """Phase 1 runs on breaker tolerance alone; as the overload bound
        shrinks the UPS joins (Phase 2) — Fig. 4's T1-T3.

        Demand 2.1 needs degree ~2.5: the initial 60 % overload bound
        covers it for tens of seconds (Phase 1), then the shrinking bound
        hands the difference to the batteries (Phase 2) well before the
        TES activation time.  Much higher demand would engage the UPS from
        the first second; much lower demand would reach the TES timer
        while still on breaker tolerance alone.
        """
        _, steps = run_constant_demand(small_datacenter, 2.1, 150)
        phases = [s.phase for s in steps if s.sprinting]
        assert phases[0] is SprintPhase.PHASE1_CB
        assert SprintPhase.PHASE2_UPS in phases
        first_ups = phases.index(SprintPhase.PHASE2_UPS)
        assert first_ups > 5
        assert all(p is SprintPhase.PHASE1_CB for p in phases[:first_ups])

    def test_phase3_tes_activates_on_schedule(self, small_datacenter):
        controller, steps = run_constant_demand(small_datacenter, 2.6, 400)
        tes_steps = [s for s in steps if s.phase is SprintPhase.PHASE3_TES]
        assert tes_steps
        first = tes_steps[0]
        assert first.time_s >= controller.tes_activation_s - 1.0

    def test_never_trips_breakers(self, small_datacenter):
        """The headline safety property: a 30-minute full burst cannot trip
        anything under controller bounds."""
        run_constant_demand(small_datacenter, 3.2, 1800)
        assert not small_datacenter.topology.pdu.breaker.tripped
        assert not small_datacenter.topology.dc_breaker.tripped

    def test_never_overheats(self, small_datacenter):
        run_constant_demand(small_datacenter, 3.2, 1800)
        room = small_datacenter.cooling.room
        assert room.peak_temperature_c < room.threshold_c

    def test_breaker_reserve_maintained_every_step(self, small_datacenter):
        controller = small_datacenter.controller(GreedyStrategy())
        reserve = controller.settings.reserve_trip_time_s
        for t in range(600):
            step = controller.step(2.6, float(t))
            per_pdu = step.grid_w / small_datacenter.topology.n_pdus
            remaining = (
                small_datacenter.topology.pdu.breaker.remaining_trip_time_s(
                    per_pdu
                )
            )
            assert remaining >= reserve * 0.98

    def test_degree_respects_strategy_bound(self, small_datacenter):
        _, steps = run_constant_demand(
            small_datacenter, 3.0, 120, strategy=FixedUpperBoundStrategy(2.0)
        )
        assert max(s.degree for s in steps) <= 2.0 + 1e-9

    def test_degree_never_exceeds_demand_needs(self, small_datacenter):
        """Cores are activated 'just enough' for the workload."""
        _, steps = run_constant_demand(small_datacenter, 1.5, 60)
        needed = small_datacenter.cluster.degree_for_demand(1.5)
        assert max(s.degree for s in steps) <= needed + 1e-9

    def test_long_burst_eventually_desprints(self, small_datacenter):
        """When the stored energy is gone the degree decays toward the
        sustainable level near 1."""
        _, steps = run_constant_demand(small_datacenter, 3.2, 1800)
        late = steps[-100:]
        assert max(s.degree for s in late) < 1.6

    def test_energy_accounting_positive(self, small_datacenter):
        controller, _ = run_constant_demand(small_datacenter, 2.6, 600)
        shares = controller.phases.energy_shares()
        assert shares["ups"] > 0.0
        assert shares["cb"] > 0.0
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_history_recorded(self, small_datacenter):
        controller, steps = run_constant_demand(small_datacenter, 2.0, 10)
        assert len(controller.history) == 10
        assert controller.history[-1] == steps[-1]


class TestControllerLifecycle:
    def test_reset_restores_everything(self, small_datacenter):
        controller, _ = run_constant_demand(small_datacenter, 3.0, 300)
        controller.reset()
        assert controller.history == []
        assert small_datacenter.topology.ups_energy_j == pytest.approx(
            small_datacenter.topology.ups_capacity_j
        )
        assert small_datacenter.cooling.tes.state_of_charge == pytest.approx(1.0)

    def test_settings_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerSettings(dt_s=0.0)
        with pytest.raises(ConfigurationError):
            ControllerSettings(reserve_trip_time_s=-1.0)

    def test_emergency_forces_normal_operation(self, small_datacenter):
        controller = small_datacenter.controller(GreedyStrategy())
        for t in range(30):
            controller.step(2.6, float(t))
        controller.safety.declare_emergency(30.0, "utility spike")
        step = controller.step(2.6, 31.0)
        assert step.degree <= 1.0 + 1e-9
