"""Differential fuzz validation of the vectorized batch kernel.

:class:`~repro.core.vector_kernel.VectorStepKernel` advances a whole batch
of fixed-bound facilities in lockstep; its contract is that element ``j``
is *bit-identical* to a scalar
:class:`~repro.core.controller.SprintingController` run with
``FixedUpperBoundStrategy(bounds[j])``.  Every test here drives the same
randomized inputs through both paths and asserts exact equality — served
series, admission integrals, substrate state, phase accumulators,
violation counts, telemetry columns, and the failure-latching semantics
(failing step index, failure kind, frozen zero tail).  Any relaxation to
``approx`` would defeat the point.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.strategies import FixedUpperBoundStrategy, MPCStrategy
from repro.core.vector_kernel import (
    FAIL_DC,
    FAIL_TANK,
    FAIL_THERMAL,
    PHASE_ORDER,
    TELEMETRY_FIELDS,
    VectorStepKernel,
)
from repro.errors import (
    BreakerTrippedError,
    ConfigurationError,
    ReproError,
    SimulationError,
    TankDepletedError,
    ThermalEmergencyError,
)
from repro.simulation.batch_facility import (
    BatchFacility,
    set_vector_oracle_enabled,
    vector_oracle_search,
)
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import run_simulation, simulate_strategy
from repro.workloads.traces import Trace

#: Small facility: same per-server ratios as the paper config, cheap to run.
SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)

BOUNDS = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0)


def random_trace(seed: int, n: int = 420, dt_s: float = 1.0) -> Trace:
    """A randomised demand trace with idle stretches and hard bursts."""
    rng = np.random.default_rng(seed)
    base = 0.55 + 0.3 * rng.random(n)
    for _ in range(rng.integers(1, 4)):
        start = int(rng.integers(0, n - 40))
        length = int(rng.integers(20, 120))
        base[start:start + length] += rng.uniform(0.8, 3.0)
    return Trace(np.clip(base, 0.0, 4.5), dt_s=dt_s, name=f"vector-{seed}")


class ScalarRun:
    """One scalar reference run: per-step served plus final accumulators."""

    def __init__(self, datacenter, samples, dt, bound, mutate=None):
        datacenter.reset()
        controller = datacenter.controller(FixedUpperBoundStrategy(bound))
        controller.strategy.reset()
        self.served = np.zeros(len(samples))
        self.fail_step = -1
        self.fail_type = None
        for i, demand in enumerate(samples):
            if mutate is not None:
                mutate(datacenter, i)
            try:
                step = controller.step(
                    float(demand), time_s=i * dt, step_index=i
                )
            except ConfigurationError:
                raise
            except ReproError as exc:
                self.fail_step = i
                self.fail_type = type(exc)
                break
            self.served[i] = step.served
        # Captured before the next run resets the shared substrate.
        self.served_integral = controller.admission.served_integral
        self.dropped_integral = controller.admission.dropped_integral
        self.demand_integral = controller.admission.demand_integral
        self.battery_energy_j = datacenter.topology.pdu.ups.battery.energy_j
        self.room_temperature_c = datacenter.cooling.room.temperature_c
        self.time_in_phase_s = [
            controller.phases.time_in_phase_s[phase] for phase in PHASE_ORDER
        ]
        self.violations = len(controller.safety.events)
        self.history = list(controller.history)


def vector_run(
    datacenter, samples, dt, bounds, mutate=None, record_telemetry=False
):
    """One batch run over ``samples``; per-element demand via a matrix."""
    datacenter.reset()
    controller = datacenter.controller(FixedUpperBoundStrategy(1.0))
    controller.strategy.reset()
    kernel = VectorStepKernel(
        datacenter.cluster,
        datacenter.topology,
        datacenter.cooling,
        controller,
        np.asarray(bounds, dtype=np.float64),
        record_telemetry=record_telemetry,
    )
    served = np.zeros((len(samples), kernel.n))
    for i, demand in enumerate(samples):
        if mutate is not None:
            mutate(kernel, i)
        step_demand = demand if np.ndim(demand) else float(demand)
        served[i] = kernel.step(step_demand, i * dt)
    return served, kernel


def assert_element_matches(kernel, served_col, j, scalar: ScalarRun):
    """Batch element ``j`` must replicate the scalar run bit-for-bit."""
    assert np.array_equal(served_col, scalar.served)
    if scalar.fail_step < 0:
        assert not kernel.failed[j]
        assert kernel.served_integral[j] == scalar.served_integral
        assert kernel.dropped_integral[j] == scalar.dropped_integral
        assert kernel.demand_integral[j] == scalar.demand_integral
        assert kernel.battery_energy_j[j] == scalar.battery_energy_j
        assert kernel.room_temperature_c[j] == scalar.room_temperature_c
        for code in range(len(PHASE_ORDER)):
            assert (
                kernel.time_in_phase_s[code][j]
                == scalar.time_in_phase_s[code]
            )
    else:
        assert kernel.failed[j]
        assert kernel.failed_step[j] == scalar.fail_step
        assert np.all(served_col[scalar.fail_step:] == 0.0)
    assert int(kernel.violations[j]) == scalar.violations


class TestVectorMatchesScalar:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces(self, seed):
        trace = random_trace(seed)
        dt = trace.dt_s
        datacenter = build_datacenter(SMALL)
        served, kernel = vector_run(datacenter, trace.samples, dt, BOUNDS)
        for j, bound in enumerate(BOUNDS):
            scalar = ScalarRun(datacenter, trace.samples, dt, bound)
            assert_element_matches(kernel, served[:, j], j, scalar)

    def test_batch_size_one(self):
        trace = random_trace(7)
        dt = trace.dt_s
        datacenter = build_datacenter(SMALL)
        served, kernel = vector_run(datacenter, trace.samples, dt, [3.0])
        assert kernel.n == 1 and served.shape == (len(trace), 1)
        scalar = ScalarRun(datacenter, trace.samples, dt, 3.0)
        assert_element_matches(kernel, served[:, 0], 0, scalar)

    @pytest.mark.parametrize("seed", (20, 21))
    def test_per_element_demand(self, seed):
        """A (steps, n) demand matrix: each element sees its own trace."""
        rng = np.random.default_rng(seed)
        bounds = (2.0, 3.0, 4.0)
        traces = [random_trace(seed * 10 + j) for j in range(len(bounds))]
        demand = np.stack([t.samples for t in traces], axis=1)
        dt = traces[0].dt_s
        datacenter = build_datacenter(SMALL)
        served, kernel = vector_run(
            datacenter, [demand[i] for i in range(demand.shape[0])], dt, bounds
        )
        for j, bound in enumerate(bounds):
            scalar = ScalarRun(datacenter, traces[j].samples, dt, bound)
            assert_element_matches(kernel, served[:, j], j, scalar)
        del rng

    def test_telemetry_matches_control_steps(self):
        trace = random_trace(3, n=200)
        dt = trace.dt_s
        datacenter = build_datacenter(SMALL)
        served, kernel = vector_run(
            datacenter, trace.samples, dt, BOUNDS, record_telemetry=True
        )
        assert kernel.telemetry is not None
        assert set(kernel.telemetry) == set(TELEMETRY_FIELDS)
        for j, bound in enumerate(BOUNDS):
            scalar = ScalarRun(datacenter, trace.samples, dt, bound)
            assert scalar.fail_step < 0
            for name in TELEMETRY_FIELDS:
                column = np.array(
                    [row[j] for row in kernel.telemetry[name]]
                )
                if name == "phase":
                    expected = np.array(
                        [
                            float(PHASE_ORDER.index(step.phase))
                            for step in scalar.history
                        ]
                    )
                elif name == "in_burst":
                    expected = np.array(
                        [float(step.in_burst) for step in scalar.history]
                    )
                else:
                    expected = np.array(
                        [getattr(step, name) for step in scalar.history]
                    )
                assert np.array_equal(column, expected), name

    def test_negative_demand_rejected(self):
        datacenter = build_datacenter(SMALL)
        _, kernel = vector_run(datacenter, [], 1.0, BOUNDS)
        with pytest.raises(ConfigurationError):
            kernel.step(-0.1, 0.0)

    def test_bad_bounds_rejected(self):
        datacenter = build_datacenter(SMALL)
        controller = datacenter.controller(FixedUpperBoundStrategy(1.0))
        for bad in ([], [0.0], [[2.0, 3.0]]):
            with pytest.raises(ConfigurationError):
                VectorStepKernel(
                    datacenter.cluster,
                    datacenter.topology,
                    datacenter.cooling,
                    controller,
                    np.asarray(bad, dtype=np.float64),
                )


class TestFailureLatching:
    """Mid-run derates must fail the same step with the same kind."""

    DERATE_STEP = 150

    def _run_pair(self, scalar_mutate, vector_mutate, seed=2):
        trace = random_trace(seed)
        # Force a sustained hard burst so every bound is actually sprinting
        # when the derate lands.
        samples = np.array(trace.samples)
        samples[120:260] = 3.8
        dt = trace.dt_s
        served, kernel = vector_run(
            build_datacenter(SMALL), samples, dt, BOUNDS, mutate=vector_mutate
        )
        # A fresh facility per scalar run: derates mutate the substrate
        # ratings, which datacenter.reset() deliberately leaves alone.
        scalars = [
            ScalarRun(
                build_datacenter(SMALL), samples, dt, bound,
                mutate=scalar_mutate,
            )
            for bound in BOUNDS
        ]
        return served, kernel, scalars

    def _assert_latching_matches(self, served, kernel, scalars, kind_of):
        any_failed = False
        for j, scalar in enumerate(scalars):
            assert_element_matches(kernel, served[:, j], j, scalar)
            if scalar.fail_step >= 0:
                any_failed = True
                assert int(kernel.failed_kind[j]) == kind_of(scalar.fail_type)
        assert any_failed, "derate failed to provoke any failure"

    def test_thermal_emergency(self):
        # Chiller alone is not enough: the safety monitor's emergency
        # shrink holds the room below threshold.  Drain the TES and start
        # the room hot so the emergency cannot be contained.
        def scalar_mutate(datacenter, i):
            if i == self.DERATE_STEP:
                datacenter.cooling.chiller.rated_removal_w *= 0.05
                if datacenter.cooling.tes is not None:
                    datacenter.cooling.tes.energy_j *= 0.0
                room = datacenter.cooling.room
                room.temperature_c = room.threshold_c - 0.5

        def vector_mutate(kernel, i):
            if i == self.DERATE_STEP:
                kernel.chiller_rated_w *= 0.05
                kernel.tes_energy_j *= 0.0
                kernel.room_temperature_c[:] = kernel._threshold - 0.5

        served, kernel, scalars = self._run_pair(scalar_mutate, vector_mutate)
        self._assert_latching_matches(
            served, kernel, scalars, lambda t: FAIL_THERMAL
        )
        assert all(
            s.fail_type in (None, ThermalEmergencyError) for s in scalars
        )

    def test_dc_breaker_trip(self):
        def scalar_mutate(datacenter, i):
            if i == self.DERATE_STEP:
                datacenter.topology.dc_breaker.rated_power_w *= 0.25

        def vector_mutate(kernel, i):
            if i == self.DERATE_STEP:
                kernel.dc.rated_w *= 0.25

        served, kernel, scalars = self._run_pair(scalar_mutate, vector_mutate)
        self._assert_latching_matches(served, kernel, scalars, lambda t: FAIL_DC)
        assert all(
            s.fail_type in (None, BreakerTrippedError) for s in scalars
        )

    def test_tank_depletion_or_thermal(self):
        def scalar_mutate(datacenter, i):
            if i == self.DERATE_STEP:
                datacenter.cooling.chiller.rated_removal_w *= 0.05
                tes = datacenter.cooling.tes
                if tes is not None:
                    tes.energy_j *= 0.002

        def vector_mutate(kernel, i):
            if i == self.DERATE_STEP:
                kernel.chiller_rated_w *= 0.05
                kernel.tes_energy_j *= 0.002

        served, kernel, scalars = self._run_pair(scalar_mutate, vector_mutate)
        kinds = {
            TankDepletedError: FAIL_TANK,
            ThermalEmergencyError: FAIL_THERMAL,
        }
        self._assert_latching_matches(
            served, kernel, scalars, lambda t: kinds[t]
        )


class TestOracleEquivalence:
    CANDIDATES = (2.0, 2.5, 3.0, 3.5, 4.0)

    def _reference_search(self, trace, candidates):
        best = None
        for candidate in candidates:
            result = run_simulation(
                build_datacenter(SMALL),
                trace,
                FixedUpperBoundStrategy(candidate),
            )
            perf = result.average_performance
            if best is None or perf > best[1]:
                best = (candidate, perf)
        return best

    @pytest.mark.parametrize("seed", (1, 4))
    def test_matches_reference_search(self, seed):
        trace = random_trace(seed)
        expected = self._reference_search(trace, self.CANDIDATES)
        got = BatchFacility(SMALL).oracle_search(trace, self.CANDIDATES)
        assert got == expected

    def test_sub_one_candidates_match_reference(self):
        """The shared-prefix envelope rejects these; the batch must not."""
        trace = random_trace(5)
        candidates = (0.8, 1.5, 2.5, 3.5, 4.0)
        expected = self._reference_search(trace, candidates)
        got = BatchFacility(SMALL).oracle_search(trace, candidates)
        assert got == expected
        fast = vector_oracle_search(trace, candidates, SMALL)
        assert fast == expected

    def test_toggle_disables_fast_path(self):
        trace = random_trace(1)
        previous = set_vector_oracle_enabled(False)
        try:
            assert vector_oracle_search(trace, self.CANDIDATES, SMALL) is None
        finally:
            set_vector_oracle_enabled(previous)

    def test_dt_mismatch_outside_envelope(self):
        trace = random_trace(1, dt_s=2.0)
        assert vector_oracle_search(trace, self.CANDIDATES, SMALL) is None
        with pytest.raises(ConfigurationError):
            BatchFacility(SMALL).run_fixed_bounds(trace, self.CANDIDATES)

    def test_empty_candidates(self):
        trace = random_trace(1)
        assert vector_oracle_search(trace, (), SMALL) is None
        with pytest.raises(ConfigurationError):
            BatchFacility(SMALL).oracle_search(trace, ())

    def test_all_failed_raises_simulation_error(self):
        trace = random_trace(6)
        facility = BatchFacility(SMALL)
        # Cripple the DC breaker on every element right away: every
        # candidate's run fails, the reference argmax contract.
        datacenter = facility.datacenter
        original = datacenter.topology.dc_breaker.rated_power_w
        datacenter.topology.dc_breaker.rated_power_w = original * 1e-6
        try:
            with pytest.raises(SimulationError):
                facility.oracle_search(trace, self.CANDIDATES)
        finally:
            datacenter.topology.dc_breaker.rated_power_w = original


class TestMPCRolloutVector:
    def test_vector_and_scalar_rollouts_identical(self, monkeypatch):
        """A full MPC run is bit-identical under either scoring path."""
        import repro.simulation.rollout as rollout_mod

        trace = random_trace(9)
        strategy_kwargs = dict(
            candidate_bounds=(2.0, 3.0, 4.0),
            horizon_s=120.0,
            replan_interval_s=60.0,
        )

        def run(use_vector):
            original = rollout_mod.RolloutPlanner.__init__

            def patched(self, *args, **kwargs):
                kwargs["use_vector"] = use_vector
                original(self, *args, **kwargs)

            monkeypatch.setattr(
                rollout_mod.RolloutPlanner, "__init__", patched
            )
            try:
                return simulate_strategy(
                    trace, MPCStrategy(**strategy_kwargs), SMALL
                )
            finally:
                monkeypatch.setattr(
                    rollout_mod.RolloutPlanner, "__init__", original
                )

        fast = run(True)
        ref = run(False)
        assert fast.average_performance == ref.average_performance
        assert all(
            a.served == b.served and a.degree == b.degree
            for a, b in zip(fast.steps, ref.steps)
        )

    def test_planner_scores_match(self):
        """Per-candidate scores agree exactly between the two paths."""
        import repro.simulation.rollout as rollout_mod

        trace = random_trace(12)
        strategy = MPCStrategy(
            candidate_bounds=(1.5, 2.5, 3.5),
            horizon_s=90.0,
            replan_interval_s=30.0,
        )
        datacenter = build_datacenter(SMALL)
        result = run_simulation(datacenter, trace, strategy)
        assert result is not None
        # Re-run with the scalar path and compare the recorded scores.
        scalar_scores = []
        vector_scores = []

        class Recorder:
            def __init__(self, sink, use_vector):
                self.sink = sink
                self.use_vector = use_vector

            def install(self, monkeyless_mod):
                original_plan = rollout_mod.RolloutPlanner.plan
                sink = self.sink
                use_vector = self.use_vector

                def plan(planner, obs):
                    planner.use_vector = use_vector
                    bound = original_plan(planner, obs)
                    sink.append(planner.last_scores)
                    return bound

                rollout_mod.RolloutPlanner.plan = plan
                return original_plan

        for sink, use_vector in (
            (vector_scores, True),
            (scalar_scores, False),
        ):
            original = Recorder(sink, use_vector).install(rollout_mod)
            try:
                simulate_strategy(
                    trace,
                    MPCStrategy(
                        candidate_bounds=(1.5, 2.5, 3.5),
                        horizon_s=90.0,
                        replan_interval_s=30.0,
                    ),
                    SMALL,
                )
            finally:
                rollout_mod.RolloutPlanner.plan = original
        assert len(vector_scores) == len(scalar_scores) > 0
        for fast, ref in zip(vector_scores, scalar_scores):
            assert fast == ref

    def test_scores_are_finite_floats(self):
        scores = []
        import repro.simulation.rollout as rollout_mod

        original_plan = rollout_mod.RolloutPlanner.plan

        def plan(planner, obs):
            bound = original_plan(planner, obs)
            scores.extend(score for _, score in planner.last_scores)
            return bound

        rollout_mod.RolloutPlanner.plan = plan
        try:
            simulate_strategy(
                random_trace(14),
                MPCStrategy(
                    candidate_bounds=(2.0, 3.0),
                    horizon_s=60.0,
                    replan_interval_s=30.0,
                ),
                SMALL,
            )
        finally:
            rollout_mod.RolloutPlanner.plan = original_plan
        assert scores
        for score in scores:
            assert isinstance(score, float)
            assert math.isfinite(score)
