"""Tests for coordinated multi-group sprinting (skewed bursts)."""

from __future__ import annotations

import pytest

from repro.core.multigroup import MultiGroupController, build_multigroup
from repro.errors import ConfigurationError
from repro.power.coordination import MultiPduTopology
from repro.power.pdu import Pdu
from repro.servers.cluster import ServerCluster
from repro.cooling.crac import CoolingPlant
from repro.cooling.tes import TesTank


def make_controller(n_groups=4, servers=50):
    return build_multigroup(n_groups=n_groups, servers_per_group=servers)


class TestConstruction:
    def test_factory_builds_consistent_facility(self):
        controller = make_controller()
        assert len(controller.clusters) == 4
        assert controller.topology.n_pdus == 4

    def test_cluster_pdu_size_mismatch_rejected(self):
        clusters = [ServerCluster(n_servers=50)]
        pdus = [Pdu(name="p", n_servers=100)]
        topo = MultiPduTopology(pdus=pdus, dc_rated_power_w=1e5)
        cooling = CoolingPlant(peak_normal_it_power_w=50 * 55.0)
        with pytest.raises(ConfigurationError):
            MultiGroupController(clusters, topo, cooling)

    def test_count_mismatch_rejected(self):
        controller = make_controller(n_groups=2)
        with pytest.raises(ConfigurationError):
            controller.step([1.0], 0.0)


class TestHomogeneousLoad:
    def test_even_load_served_evenly(self):
        controller = make_controller()
        step = controller.step([0.8] * 4, 0.0)
        for group in step.groups:
            assert group.served == pytest.approx(0.8)

    def test_even_burst_sprints_all_groups(self):
        controller = make_controller()
        for t in range(60):
            step = controller.step([2.0] * 4, float(t))
        for group in step.groups:
            assert group.degree > 1.5
            assert group.served == pytest.approx(2.0, rel=0.05)

    def test_never_trips_under_sustained_even_burst(self):
        controller = make_controller()
        for t in range(1200):
            controller.step([3.0] * 4, float(t))
        assert not controller.topology.dc_breaker.tripped
        assert not any(p.breaker.tripped for p in controller.topology.pdus)
        room = controller.cooling.room
        assert room.peak_temperature_c < room.threshold_c


class TestSkewedBurst:
    def test_bursting_group_borrows_idle_budget(self):
        """One group bursts to 3x while the rest idle at 50 %: the burst
        group's grid draw exceeds its own breaker rating — possible only
        because the substation budget the idle groups left is shifted to
        it (Section V-B)."""
        controller = make_controller()
        demands = [3.0, 0.5, 0.5, 0.5]
        for t in range(30):
            step = controller.step(demands, float(t))
        burst_group = step.groups[0]
        own_rating = controller.topology.pdus[0].rated_power_w
        assert burst_group.grid_w > own_rating
        assert burst_group.degree > 2.5

    def test_skewed_burst_never_trips(self):
        controller = make_controller()
        demands = [3.2, 0.5, 0.5, 0.5]
        for t in range(1200):
            controller.step(demands, float(t))
        assert not controller.topology.dc_breaker.tripped
        assert not any(p.breaker.tripped for p in controller.topology.pdus)

    def test_idle_groups_unaffected(self):
        controller = make_controller()
        demands = [3.0, 0.5, 0.5, 0.5]
        for t in range(120):
            step = controller.step(demands, float(t))
        for group in step.groups[1:]:
            assert group.served == pytest.approx(0.5)

    def test_burst_group_outperforms_isolated_operation(self):
        """With coordination, the skewed burst is served better than a
        group limited to its own breaker + UPS could manage."""
        coordinated = make_controller()
        demands = [3.0, 0.5, 0.5, 0.5]
        for t in range(600):
            coordinated.step(demands, float(t))
        coordinated_served = sum(
            s.groups[0].served for s in coordinated.history
        )

        # Isolation: a single-group facility of the same size (its own
        # breaker and UPS, its own fair 1/4 share of substation budget).
        isolated = build_multigroup(n_groups=4, servers_per_group=50)
        for t in range(600):
            isolated.step([3.0, 3.0, 3.0, 3.0], float(t))
        isolated_served = sum(
            s.groups[0].served for s in isolated.history
        )
        assert coordinated_served > isolated_served * 1.02

    def test_group_ups_is_local(self):
        """Only the bursting group's batteries discharge."""
        controller = make_controller()
        demands = [3.0, 0.5, 0.5, 0.5]
        for t in range(300):
            controller.step(demands, float(t))
        socs = [p.ups.state_of_charge for p in controller.topology.pdus]
        assert socs[0] < 1.0
        assert all(s == pytest.approx(1.0) for s in socs[1:])


class TestHeterogeneousGroups:
    def make_heterogeneous(self):
        from repro.core.multigroup import MultiGroupController
        from repro.power.coordination import MultiPduTopology

        clusters = [
            ServerCluster(n_servers=100),
            ServerCluster(n_servers=25),
        ]
        pdus = [
            Pdu(name="big", n_servers=100),
            Pdu(name="small", n_servers=25),
        ]
        total_it = sum(c.peak_normal_power_w for c in clusters)
        topo = MultiPduTopology(
            pdus=pdus, dc_rated_power_w=total_it * 1.53 * 1.1
        )
        cooling = CoolingPlant(
            peak_normal_it_power_w=total_it,
            tes=TesTank.sized_for(total_it),
        )
        return MultiGroupController(clusters, topo, cooling)

    def test_aggregate_demand_is_capacity_weighted(self):
        controller = self.make_heterogeneous()
        # 100 servers at 2.0 plus 25 servers at 0.0: aggregate 1.6.
        assert controller._aggregate_demand([2.0, 0.0]) == pytest.approx(1.6)

    def test_small_group_burst_served_with_big_group_budget(self):
        """The 25-server group bursting to 3x borrows from the idle
        100-server group's share of the substation budget."""
        controller = self.make_heterogeneous()
        for t in range(60):
            step = controller.step([0.5, 3.0], float(t))
        small = step.groups[1]
        assert small.degree > 2.5
        assert small.served == pytest.approx(
            min(3.0, controller.clusters[1].capacity_at_degree(small.degree))
        )

    def test_sizes_respected_in_power_accounting(self):
        controller = self.make_heterogeneous()
        step = controller.step([1.0, 1.0], 0.0)
        big, small = step.groups
        assert big.grid_w == pytest.approx(small.grid_w * 4.0, rel=1e-6)


class TestThermalGuard:
    def test_no_tes_facility_never_overheats(self):
        """Without a tank the thermal guard scales every group's extra
        power back once the room headroom is spent."""
        from repro.core.multigroup import MultiGroupController
        from repro.power.coordination import MultiPduTopology
        from repro.power.pdu import Pdu

        clusters = [ServerCluster(n_servers=50) for _ in range(4)]
        pdus = [Pdu(name=f"p{i}", n_servers=50) for i in range(4)]
        total_it = sum(c.peak_normal_power_w for c in clusters)
        topo = MultiPduTopology(
            pdus=pdus, dc_rated_power_w=total_it * 1.53 * 1.1
        )
        cooling = CoolingPlant(peak_normal_it_power_w=total_it, tes=None)
        controller = MultiGroupController(clusters, topo, cooling)
        for t in range(1800):
            controller.step([2.5] * 4, float(t))
        room = cooling.room
        assert room.peak_temperature_c < room.threshold_c
        # Once thermally capped, degrees sit near the sustainable level.
        late = controller.history[-60:]
        for step in late:
            for group in step.groups:
                assert group.degree < 1.6


class TestLifecycle:
    def test_reset(self):
        controller = make_controller()
        for t in range(120):
            controller.step([3.0, 0.5, 0.5, 0.5], float(t))
        controller.reset()
        assert controller.history == []
        assert controller.topology.pdus[0].ups.state_of_charge == (
            pytest.approx(1.0)
        )
