"""Tests for the safety monitor."""

from __future__ import annotations

import pytest

from repro.cooling.crac import CoolingPlant
from repro.cooling.tes import TesTank
from repro.core.safety import SafetyMonitor
from repro.power.topology import PowerTopology


def make_parts():
    topo = PowerTopology(n_pdus=2, servers_per_pdu=50)
    tes = TesTank.sized_for(topo.peak_normal_it_power_w)
    plant = CoolingPlant(
        peak_normal_it_power_w=topo.peak_normal_it_power_w, tes=tes
    )
    return topo, plant


class TestBreakerReserveChecks:
    def test_ok_within_reserve(self):
        topo, _ = make_parts()
        monitor = SafetyMonitor(min_trip_reserve_s=60.0)
        pdu_load = topo.pdu.breaker.max_load_for_trip_time(60.0)
        dc_load = topo.dc_breaker.max_load_for_trip_time(60.0)
        assert monitor.breaker_reserves_ok(topo, pdu_load, dc_load, 0.0)
        assert monitor.events == []

    def test_violation_logged(self):
        topo, _ = make_parts()
        monitor = SafetyMonitor(min_trip_reserve_s=60.0)
        too_much = topo.pdu.breaker.rated_power_w * 1.9
        ok = monitor.breaker_reserves_ok(topo, too_much, 0.0, 5.0)
        assert not ok
        assert any(e.kind == "breaker-reserve" for e in monitor.events)

    def test_dc_level_checked_too(self):
        topo, _ = make_parts()
        monitor = SafetyMonitor(min_trip_reserve_s=60.0)
        too_much = topo.dc_breaker.rated_power_w * 1.9
        assert not monitor.breaker_reserves_ok(topo, 0.0, too_much, 5.0)


class TestThermalChecks:
    def test_safe_with_headroom(self):
        _, plant = make_parts()
        monitor = SafetyMonitor(thermal_margin_k=2.0)
        assert monitor.thermal_degree_is_safe(plant, use_tes=False, time_s=0.0)

    def test_unsafe_at_margin_without_tes(self):
        _, plant = make_parts()
        monitor = SafetyMonitor(thermal_margin_k=2.0)
        plant.room.temperature_c = plant.room.threshold_c - 1.0
        assert not monitor.thermal_degree_is_safe(plant, use_tes=False, time_s=1.0)
        assert any(e.kind == "thermal" for e in monitor.events)

    def test_tes_cover_keeps_it_safe(self):
        _, plant = make_parts()
        monitor = SafetyMonitor(thermal_margin_k=2.0)
        plant.room.temperature_c = plant.room.threshold_c - 1.0
        assert monitor.thermal_degree_is_safe(plant, use_tes=True, time_s=1.0)

    def test_empty_tes_does_not_cover(self):
        _, plant = make_parts()
        monitor = SafetyMonitor(thermal_margin_k=2.0)
        plant.room.temperature_c = plant.room.threshold_c - 1.0
        plant.tes.absorb_up_to(plant.tes.max_discharge_w, 1e9)
        assert not monitor.thermal_degree_is_safe(plant, use_tes=True, time_s=1.0)


class TestExternalEmergencies:
    def test_emergency_fails_all_checks(self):
        topo, plant = make_parts()
        monitor = SafetyMonitor()
        monitor.declare_emergency(10.0, "utility power spike")
        assert monitor.emergency_active
        assert not monitor.breaker_reserves_ok(topo, 0.0, 0.0, 11.0)
        assert not monitor.thermal_degree_is_safe(plant, False, 11.0)

    def test_clear_emergency(self):
        topo, _ = make_parts()
        monitor = SafetyMonitor()
        monitor.declare_emergency(10.0, "spike")
        monitor.clear_emergency()
        assert monitor.breaker_reserves_ok(topo, 0.0, 0.0, 12.0)

    def test_reset_clears_everything(self):
        monitor = SafetyMonitor()
        monitor.declare_emergency(10.0, "spike")
        monitor.reset()
        assert not monitor.emergency_active
        assert monitor.events == []
