"""Convergence tests for the controller's power fixed point (``_fit_power``).

The committed degree emerges from at most three iterations of a mutually
dependent pair — cooling electric power depends on IT power, the per-PDU
grid bound depends on cooling power — so these tests assert the property
the loop exists to guarantee: the *committed* step can actually be
sourced (PDU bound + UPS assist), and a configured UPS outage reserve is
never touched, including after a thermal refit.
"""

from __future__ import annotations

import pytest

from repro.core.controller import ControllerSettings, SprintingController
from repro.core.strategies import GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def make_controller(settings=None, use_kernel=True):
    dc = build_datacenter(SMALL)
    controller = SprintingController(
        cluster=dc.cluster,
        topology=dc.topology,
        cooling=dc.cooling,
        strategy=GreedyStrategy(),
        settings=settings or ControllerSettings(),
        use_kernel=use_kernel,
    )
    return dc, controller


@pytest.mark.parametrize("use_kernel", (True, False))
class TestPowerFixedPoint:
    def test_committed_power_is_sourceable(self, use_kernel):
        """Every committed step fits within grid bound + UPS assist."""
        dc, controller = make_controller(use_kernel=use_kernel)
        n_pdus = dc.topology.n_pdus
        for t in range(240):
            ups_before = dc.topology.pdu.ups.available_power_w()
            step = controller.step(3.5, float(t))
            available = (step.pdu_grid_bound_w + ups_before) * n_pdus
            assert step.it_power_w <= available * (1.0 + 1e-9)

    def test_fixed_point_reached_within_three_iterations(self, use_kernel):
        """The fit is self-consistent: refitting the committed degree is
        a no-op, i.e. three iterations were enough to converge."""
        dc, controller = make_controller(use_kernel=use_kernel)
        step = controller.step(3.5, 0.0)
        refit_degree, _, _ = controller._fit_power(
            step.degree, use_tes=step.tes_heat_w > 0.0, dt=1.0
        )
        assert refit_degree == step.degree

    def test_ups_reserve_is_never_touched(self, use_kernel):
        """With an outage reserve, sprinting stops at the floor."""
        settings = ControllerSettings(ups_outage_reserve_fraction=0.5)
        dc, controller = make_controller(settings, use_kernel=use_kernel)
        floor_j = 0.5 * dc.topology.ups_capacity_j
        for t in range(600):
            controller.step(3.5, float(t))
            remaining = (
                dc.topology.pdu.ups.energy_j * dc.topology.n_pdus
            )
            assert remaining >= floor_j * (1.0 - 1e-9)

    def test_reserve_caps_sprinting_earlier(self, use_kernel):
        """A large reserve ends UPS-assisted sprinting sooner than none."""
        results = {}
        for fraction in (0.0, 0.8):
            settings = ControllerSettings(
                ups_outage_reserve_fraction=fraction
            )
            _, controller = make_controller(settings, use_kernel=use_kernel)
            ups_time = 0
            for t in range(600):
                step = controller.step(3.5, float(t))
                if step.ups_w > 1e-6:
                    ups_time += 1
            results[fraction] = ups_time
        assert results[0.8] < results[0.0]

    def test_refit_after_thermal_reduction_still_sourceable(
        self, use_kernel
    ):
        """Once the room margin binds, the thermally reduced degree is
        refitted against the power bounds — the committed step respects
        both constraints simultaneously."""
        dc, controller = make_controller(use_kernel=use_kernel)
        margin = controller.settings.thermal_margin_k
        n_pdus = dc.topology.n_pdus
        # Pre-heat the room to just outside the margin so sprinting heat
        # consumes the remaining headroom within the drive.
        room = dc.cooling.room
        room.temperature_c = room.threshold_c - margin - 0.5
        saw_thermal_bind = False
        for t in range(1200):
            ups_before = dc.topology.pdu.ups.available_power_w()
            step = controller.step(4.0, float(t))
            available = (step.pdu_grid_bound_w + ups_before) * n_pdus
            assert step.it_power_w <= available * (1.0 + 1e-9)
            if dc.cooling.room.headroom_k <= margin:
                saw_thermal_bind = True
        assert saw_thermal_bind, (
            "the drive never consumed the thermal headroom; the refit "
            "path was not exercised"
        )
