"""Tests for the power-capping baseline (the Section II contrast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import GreedyStrategy
from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.simulation.engine import simulate_strategy
from repro.workloads.traces import Trace
from repro.workloads.ms_trace import default_ms_trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


def burst_trace():
    values = [0.8] * 60 + [2.4] * 300 + [0.8] * 60
    return Trace(np.asarray(values, dtype=float), 1.0, "burst")


class TestCappedDegree:
    def test_capped_degree_modest(self):
        """The rated limits admit only a small degree: the 10 %
        under-provisioned DC headroom binds before the PDUs' 25 % NEC
        margin, capping the degree near 1.18 at the paper's defaults."""
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        degree = baseline.capped_degree()
        assert 1.1 <= degree <= 1.7
        # The DC level is the binding one here.
        dc_cap = dc.topology.dc_breaker.rated_power_w / dc.cooling.pue
        assert degree == pytest.approx(dc.cluster.degree_for_power(dc_cap))

    def test_cap_respects_both_levels(self):
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        degree = baseline.capped_degree()
        it_power = dc.cluster.power_at_degree_w(degree)
        assert it_power <= dc.topology.pdu.rated_power_w * dc.topology.n_pdus + 1e-6
        assert it_power * dc.cooling.pue <= (
            dc.topology.dc_breaker.rated_power_w + 1e-6
        )


class TestCappedOperation:
    def test_never_overloads_breakers(self):
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        baseline.run(burst_trace())
        assert dc.topology.pdu.breaker.trip_fraction == 0.0
        assert not dc.topology.dc_breaker.tripped

    def test_never_uses_storage(self):
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        baseline.run(burst_trace())
        assert dc.topology.ups_energy_j == pytest.approx(
            dc.topology.ups_capacity_j
        )
        assert dc.cooling.tes.state_of_charge == pytest.approx(1.0)

    def test_serves_below_capacity_fully(self):
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        step = baseline.step(0.8, 0.0)
        assert step.served == pytest.approx(0.8)

    def test_burst_demand_throttled(self):
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        step = baseline.step(2.4, 0.0)
        assert step.served < 1.5
        assert step.degree == pytest.approx(baseline.capped_degree())

    def test_reset(self):
        dc = build_datacenter(SMALL)
        baseline = dc.capping()
        baseline.run(burst_trace())
        baseline.reset()
        assert baseline.history == []


class TestSprintingBeatsCapping:
    def test_much_better_performance_for_bursty_workloads(self):
        """The paper's Section II claim, quantified: on the MS trace
        sprinting serves far more of the bursts than any capped system
        possibly can."""
        trace = default_ms_trace()
        sprinting = simulate_strategy(trace, GreedyStrategy())
        dc = build_datacenter()
        capping = dc.capping()
        capping_perf = capping.average_performance(trace)
        assert capping_perf < 1.5
        assert sprinting.average_performance > capping_perf * 1.25
