"""Tests for the four sprinting-degree strategies and the bound table."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.core.strategies import (
    FixedUpperBoundStrategy,
    GreedyStrategy,
    HeuristicStrategy,
    OracleStrategy,
    PredictionStrategy,
    StrategyObservation,
    UpperBoundTable,
    oracle_search,
)


def obs(
    time_s=0.0,
    demand=2.0,
    in_burst=True,
    time_in_burst_s=0.0,
    budget=1.0,
    max_degree=4.0,
):
    return StrategyObservation(
        time_s=time_s,
        demand=demand,
        in_burst=in_burst,
        time_in_burst_s=time_in_burst_s,
        budget_fraction_remaining=budget,
        max_degree=max_degree,
    )


#: Facility-wide additional power per the default cluster: 30 W x 180k
#: servers per unit degree above 1.
def additional_power(degree):
    return max(0.0, 30.0 * 180_000 * (degree - 1.0))


class TestGreedy:
    def test_never_constrains(self):
        strategy = GreedyStrategy()
        assert strategy.degree_upper_bound(obs()) == 4.0
        assert strategy.degree_upper_bound(obs(in_burst=False)) == 4.0


class TestFixedAndOracle:
    def test_fixed_bound(self):
        strategy = FixedUpperBoundStrategy(2.5)
        assert strategy.degree_upper_bound(obs()) == 2.5

    def test_fixed_clamped_to_chip(self):
        strategy = FixedUpperBoundStrategy(9.0)
        assert strategy.degree_upper_bound(obs()) == 4.0

    def test_fixed_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FixedUpperBoundStrategy(0.0)

    def test_oracle_search_picks_argmax(self):
        # Performance peaks at 2.5 in this synthetic landscape.
        oracle = oracle_search(
            evaluate=lambda ub: -(ub - 2.5) ** 2,
            candidates=[1.0, 1.5, 2.0, 2.5, 3.0, 4.0],
        )
        assert oracle.upper_bound == 2.5
        assert oracle.achieved_performance == pytest.approx(0.0)

    def test_oracle_search_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            oracle_search(lambda ub: ub, [])

    def test_oracle_search_tie_keeps_lowest_bound(self):
        """The argmax is strict: equal performances keep the *first*
        candidate, which on an ascending grid is the lowest winning
        bound (the least aggressive policy attaining the optimum)."""
        oracle = oracle_search(
            evaluate=lambda ub: 1.0,  # flat landscape: everything ties
            candidates=[2.0, 2.5, 3.0, 4.0],
        )
        assert oracle.upper_bound == 2.0

    def test_oracle_search_tie_is_order_dependent(self):
        """First-wins means the caller's ordering decides ties — pinned
        so all Oracle reductions (serial, pooled, shared-prefix) stay
        mutually consistent."""
        plateau = {2.0: 1.8, 3.0: 1.8, 4.0: 1.2}
        ascending = oracle_search(plateau.__getitem__, [2.0, 3.0, 4.0])
        descending = oracle_search(plateau.__getitem__, [4.0, 3.0, 2.0])
        assert ascending.upper_bound == 2.0
        assert descending.upper_bound == 3.0


class TestUpperBoundTable:
    def make_table(self):
        table = UpperBoundTable()
        table.set(300.0, 3.0, 4.0)
        table.set(900.0, 3.0, 2.5)
        table.set(300.0, 3.6, 3.5)
        table.set(900.0, 3.6, 2.0)
        return table

    def test_exact_lookup(self):
        assert self.make_table().lookup(900.0, 3.0) == 2.5

    def test_nearest_lookup(self):
        table = self.make_table()
        assert table.lookup(1000.0, 3.1) == 2.5
        assert table.lookup(100.0, 3.7) == 3.5

    def test_len(self):
        assert len(self.make_table()) == 4

    def test_empty_lookup_rejected(self):
        with pytest.raises(ConfigurationError):
            UpperBoundTable().lookup(100.0, 3.0)

    def test_midpoint_ties_snap_to_lower_grid_point(self):
        """A query exactly midway between grid points takes the lower
        point on both axes (min keeps the first of equal keys and the
        axes are sorted ascending)."""
        table = self.make_table()
        assert table.lookup(600.0, 3.0) == 4.0  # duration midpoint -> 300
        assert table.lookup(300.0, 3.3) == 4.0  # degree midpoint -> 3.0
        assert table.lookup(600.0, 3.3) == 4.0  # both midway -> (300, 3.0)

    def test_midpoint_tie_break_independent_of_insertion_order(self):
        """`set` keeps the axis lists sorted, so the lower-point rule
        holds however the grid was populated."""
        table = UpperBoundTable()
        table.set(900.0, 3.6, 2.0)
        table.set(300.0, 3.6, 3.5)
        table.set(900.0, 3.0, 2.5)
        table.set(300.0, 3.0, 4.0)
        assert table.lookup(600.0, 3.3) == 4.0


class TestPrediction:
    def make(self, bdu=900.0):
        return PredictionStrategy(
            table=self._table(), predicted_burst_duration_s=bdu
        )

    def _table(self):
        table = UpperBoundTable()
        table.set(300.0, 3.0, 4.0)
        table.set(900.0, 3.0, 3.0)
        table.set(1800.0, 3.0, 2.5)
        return table

    def test_outside_burst_unconstrained(self):
        strategy = self.make()
        assert strategy.degree_upper_bound(obs(in_burst=False)) == 4.0

    def test_initial_equivalent_duration_equals_prediction(self):
        """Before any burst time elapses SDe_avg = SDe_max, so Eq. 1 gives
        BDu_e = BDu_p."""
        strategy = self.make(bdu=900.0)
        assert strategy.equivalent_duration_s() == pytest.approx(900.0)
        assert strategy.degree_upper_bound(obs()) == 3.0

    def test_low_realised_degree_stretches_equivalent_duration(self):
        strategy = self.make(bdu=900.0)
        strategy.notify_realized(2.0, 100.0, in_burst=True)
        # SDe_avg = 2, so BDu_e = 900 x 4/2 = 1800 -> bound 2.5.
        assert strategy.equivalent_duration_s() == pytest.approx(1800.0)
        assert strategy.degree_upper_bound(obs(time_in_burst_s=100.0)) == 2.5

    def test_zero_prediction_degenerates_to_greedy(self):
        strategy = self.make(bdu=0.0)
        assert strategy.degree_upper_bound(obs()) == 4.0

    def test_notify_outside_burst_ignored(self):
        strategy = self.make()
        strategy.notify_realized(1.0, 50.0, in_burst=False)
        assert strategy.average_degree() == 4.0

    def test_average_degree_floor(self):
        strategy = self.make()
        strategy.notify_realized(0.5, 10.0, in_burst=True)
        assert strategy.average_degree() >= 1.0

    def test_reset(self):
        strategy = self.make()
        strategy.notify_realized(2.0, 100.0, in_burst=True)
        strategy.reset()
        assert strategy.average_degree() == 4.0

    def test_peak_demand_selects_degree_column(self):
        """The table's burst-degree axis is keyed by the highest demand
        observed so far."""
        table = UpperBoundTable()
        table.set(900.0, 2.6, 3.0)   # mild bursts: higher bound optimal
        table.set(900.0, 3.6, 2.0)   # fierce bursts: constrain harder
        strategy = PredictionStrategy(table, predicted_burst_duration_s=900.0)
        # SDe_avg anchored at 900 s so BDu_e stays at 900 s.
        strategy.notify_realized(4.0, 900.0, in_burst=True)
        mild = strategy.degree_upper_bound(
            obs(demand=2.6, time_in_burst_s=900.0)
        )
        assert mild == 3.0
        fierce = strategy.degree_upper_bound(
            obs(demand=3.6, time_in_burst_s=900.0)
        )
        assert fierce == 2.0
        # The peak is sticky: once a fierce burst was seen, the mild
        # column is no longer selected.
        sticky = strategy.degree_upper_bound(
            obs(demand=2.6, time_in_burst_s=900.0)
        )
        assert sticky == 2.0


class TestHeuristic:
    def make(self, sde_p=2.4, k=10.0):
        return HeuristicStrategy(
            estimated_best_degree=sde_p,
            additional_power_fn=additional_power,
            flexibility_percent=k,
        )

    def test_initial_bound_inflated_by_k(self):
        strategy = self.make(sde_p=2.0, k=10.0)
        assert strategy.initial_bound == pytest.approx(2.2)

    def test_initial_bound_clamped(self):
        strategy = self.make(sde_p=3.9, k=10.0)
        assert strategy.initial_bound == pytest.approx(4.0)

    def test_outside_burst_unconstrained(self):
        strategy = self.make()
        assert strategy.degree_upper_bound(obs(in_burst=False)) == 4.0

    def test_zero_estimate_means_no_sprinting(self):
        strategy = self.make(sde_p=0.0)
        assert strategy.degree_upper_bound(obs()) == 1.0

    def test_bound_at_burst_start_is_initial(self):
        strategy = self.make(sde_p=2.4)
        strategy.set_budget_scale(1e9)
        bound = strategy.degree_upper_bound(obs(time_in_burst_s=0.0, budget=1.0))
        assert bound == pytest.approx(strategy.initial_bound)

    def test_unspent_energy_raises_bound(self):
        """RE staying at 1 while RT falls pulls the bound upward."""
        strategy = self.make(sde_p=2.4)
        strategy.set_budget_scale(1e9)
        duration = strategy._predicted_duration_s
        early = strategy.degree_upper_bound(obs(time_in_burst_s=0.0, budget=1.0))
        later = strategy.degree_upper_bound(
            obs(time_in_burst_s=duration / 2.0, budget=1.0)
        )
        assert later > early

    def test_overspent_energy_lowers_bound(self):
        strategy = self.make(sde_p=2.4)
        strategy.set_budget_scale(1e9)
        baseline = strategy.degree_upper_bound(obs(time_in_burst_s=0.0, budget=1.0))
        squeezed = strategy.degree_upper_bound(
            obs(time_in_burst_s=0.0, budget=0.4)
        )
        assert squeezed < baseline

    def test_bound_never_below_one_in_burst(self):
        strategy = self.make(sde_p=2.4)
        strategy.set_budget_scale(1e9)
        bound = strategy.degree_upper_bound(obs(budget=0.0))
        assert bound == pytest.approx(1.0)

    def test_predicted_duration_physical(self):
        """SDu_p = EB_tot / (P_unit x (SDe_p - 1))."""
        strategy = self.make(sde_p=2.0)
        strategy.set_budget_scale(5.4e6 * 500.0)  # 500 s at one extra degree
        assert strategy._predicted_duration_s == pytest.approx(500.0)

    def test_estimate_at_or_below_one_plans_forever(self):
        strategy = self.make(sde_p=1.0)
        strategy.set_budget_scale(1e9)
        assert math.isinf(strategy._predicted_duration_s)

    def test_reset(self):
        strategy = self.make()
        strategy.set_budget_scale(1e9)
        strategy.reset()
        assert strategy._predicted_duration_s is None


class TestMinus100PercentEstimates:
    """Fig. 9's left end: a -100 % estimation error predicts zero burst
    duration / zero best degree.  Both predicted-input strategies must
    degrade gracefully — finite bounds, no division by zero — because the
    error sweep drives them all the way to that edge."""

    def _table(self):
        table = UpperBoundTable()
        table.set(300.0, 3.0, 4.0)
        table.set(900.0, 3.0, 3.0)
        return table

    def test_prediction_with_zero_duration_never_divides_by_zero(self):
        strategy = PredictionStrategy(
            self._table(), predicted_burst_duration_s=0.0
        )
        for t in range(0, 600, 60):
            bound = strategy.degree_upper_bound(
                obs(time_in_burst_s=float(t))
            )
            assert math.isfinite(bound)
            assert bound == 4.0
            strategy.notify_realized(bound, 60.0, in_burst=True)

    def test_prediction_equivalent_duration_stays_finite(self):
        strategy = PredictionStrategy(
            self._table(), predicted_burst_duration_s=0.0
        )
        strategy.notify_realized(2.0, 100.0, in_burst=True)
        assert strategy.equivalent_duration_s() == 0.0

    def test_heuristic_with_zero_estimate_never_divides_by_zero(self):
        strategy = HeuristicStrategy(
            estimated_best_degree=0.0,
            additional_power_fn=additional_power,
        )
        strategy.set_budget_scale(1e9)
        for t in range(0, 600, 60):
            for budget in (1.0, 0.5, 0.0):
                bound = strategy.degree_upper_bound(
                    obs(time_in_burst_s=float(t), budget=budget)
                )
                assert math.isfinite(bound)
                assert bound == 1.0

    def test_heuristic_estimate_at_one_predicts_no_drain(self):
        """SDe_p = 1 means no additional power: the plan duration is
        infinite and the RE/RT correction degenerates to the initial
        bound instead of dividing by zero."""
        strategy = HeuristicStrategy(
            estimated_best_degree=1.0,
            additional_power_fn=additional_power,
        )
        strategy.set_budget_scale(1e9)
        bound = strategy.degree_upper_bound(obs(time_in_burst_s=300.0))
        assert math.isfinite(bound)
        assert bound == pytest.approx(strategy.initial_bound)

    def test_heuristic_with_zero_budget_scale(self):
        strategy = HeuristicStrategy(
            estimated_best_degree=2.4,
            additional_power_fn=additional_power,
        )
        strategy.set_budget_scale(0.0)
        bound = strategy.degree_upper_bound(obs(budget=0.0))
        assert math.isfinite(bound)
        assert 1.0 <= bound <= 4.0
