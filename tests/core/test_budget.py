"""Tests for the additional-energy budget bookkeeping."""

from __future__ import annotations

import math

import pytest

from repro.core.budget import (
    EnergyBudget,
    cb_deliverable_energy_j,
    tes_electric_equivalent_j,
)
from repro.cooling.crac import CoolingPlant
from repro.cooling.tes import TesTank
from repro.power.breaker import CircuitBreaker
from repro.power.topology import PowerTopology


def make_breaker():
    return CircuitBreaker(name="b", rated_power_w=1000.0)


class TestCbDeliverableEnergy:
    def test_cold_breaker_short_horizon(self):
        """Over a short horizon the plan runs at high overload."""
        cb = make_breaker()
        energy = cb_deliverable_energy_j(cb, horizon_s=60.0, reserve_s=0.0)
        # Overload tripping in exactly 60 s is 60 %: 600 W for 60 s.
        assert energy == pytest.approx(600.0 * 60.0, rel=1e-6)

    def test_reserve_reduces_energy(self):
        cb = make_breaker()
        without = cb_deliverable_energy_j(cb, 120.0, 0.0)
        with_reserve = cb_deliverable_energy_j(cb, 120.0, 60.0)
        assert with_reserve < without

    def test_long_horizon_uses_hold_region(self):
        """Far horizons settle at the hold-threshold overload."""
        cb = make_breaker()
        horizon = 1e6
        energy = cb_deliverable_energy_j(cb, horizon, 60.0)
        hold = cb.curve.hold_threshold
        assert energy == pytest.approx(1000.0 * hold * horizon, rel=1e-6)

    def test_tripped_breaker_gives_zero(self):
        cb = make_breaker()
        cb.tripped = True
        assert cb_deliverable_energy_j(cb, 100.0, 0.0) == 0.0

    def test_partially_burned_breaker_gives_less(self):
        cold = make_breaker()
        warm = make_breaker()
        warm.step(1300.0, 60.0)
        assert cb_deliverable_energy_j(warm, 300.0, 60.0) < (
            cb_deliverable_energy_j(cold, 300.0, 60.0)
        )


class TestTesElectricEquivalent:
    def test_no_tes_gives_zero(self):
        plant = CoolingPlant(peak_normal_it_power_w=9.9e6, tes=None)
        assert tes_electric_equivalent_j(plant) == 0.0

    def test_full_tank_equivalent(self):
        """Stored cooling joules displace (PUE-1) x 2/3 electric joules."""
        tes = TesTank.sized_for(9.9e6)
        plant = CoolingPlant(peak_normal_it_power_w=9.9e6, tes=tes)
        expected = tes.capacity_j * 0.53 * (2.0 / 3.0)
        assert tes_electric_equivalent_j(plant) == pytest.approx(expected)


class TestEnergyBudget:
    def make_budget(self):
        topo = PowerTopology(n_pdus=2, servers_per_pdu=50)
        tes = TesTank.sized_for(topo.peak_normal_it_power_w)
        plant = CoolingPlant(
            peak_normal_it_power_w=topo.peak_normal_it_power_w, tes=tes
        )
        return EnergyBudget(topo, plant, horizon_s=900.0, reserve_s=60.0)

    def test_components_all_positive(self):
        budget = self.make_budget()
        assert budget.ups_energy_j() > 0.0
        assert budget.tes_energy_j() > 0.0
        assert budget.cb_energy_j() > 0.0

    def test_snapshot_and_fraction(self):
        budget = self.make_budget()
        total = budget.snapshot()
        assert total == pytest.approx(budget.remaining_j())
        assert budget.fraction_remaining() == pytest.approx(1.0)

    def test_fraction_falls_after_discharge(self):
        budget = self.make_budget()
        budget.snapshot()
        budget.topology.pdu.ups.discharge_up_to(1000.0, 60.0)
        assert budget.fraction_remaining() < 1.0

    def test_fraction_clamped_to_unit_interval(self):
        budget = self.make_budget()
        budget.snapshot()
        # Recharging above the snapshot must not push RE above 1.
        assert budget.fraction_remaining() <= 1.0

    def test_total_without_snapshot_is_live(self):
        budget = self.make_budget()
        live = budget.remaining_j()
        assert budget.total_j == pytest.approx(live)

    def test_clear_snapshot(self):
        budget = self.make_budget()
        budget.snapshot()
        budget.clear_snapshot()
        assert budget.total_j == pytest.approx(budget.remaining_j())

    def test_cb_term_is_min_of_levels(self):
        """The CB term never exceeds either level's own deliverable sum."""
        budget = self.make_budget()
        pdu_total = (
            cb_deliverable_energy_j(budget.topology.pdu.breaker, 900.0, 60.0)
            * budget.topology.n_pdus
        )
        dc_total = cb_deliverable_energy_j(
            budget.topology.dc_breaker, 900.0, 60.0
        )
        assert budget.cb_energy_j() <= min(pdu_total, dc_total) * (1 + 1e-9)
