"""Shared fixtures for the Data Center Sprinting test suite."""

from __future__ import annotations

import pytest

from repro.simulation.config import DataCenterConfig
from repro.simulation.datacenter import build_datacenter
from repro.workloads.ms_trace import default_ms_trace
from repro.workloads.yahoo_trace import generate_yahoo_trace


@pytest.fixture(scope="session")
def ms_trace():
    """The packaged reference MS-style trace (read-only)."""
    return default_ms_trace()


@pytest.fixture(scope="session")
def yahoo_trace_15min():
    """Yahoo trace with the Fig. 7b burst (degree 3.2, 15 minutes)."""
    return generate_yahoo_trace(burst_degree=3.2, burst_duration_min=15)


@pytest.fixture(scope="session")
def yahoo_trace_5min():
    """Yahoo trace with a short burst (degree 3.2, 5 minutes)."""
    return generate_yahoo_trace(burst_degree=3.2, burst_duration_min=5)


@pytest.fixture()
def default_config():
    """The paper's Section VI-A configuration."""
    return DataCenterConfig()


@pytest.fixture()
def datacenter(default_config):
    """A freshly built default facility."""
    return build_datacenter(default_config)


@pytest.fixture()
def small_datacenter():
    """A small facility for fast controller unit tests.

    Two PDUs of 50 servers each; every per-server ratio (breaker headroom,
    UPS minutes, TES minutes) matches the paper's defaults, so control
    dynamics are identical to the full-size facility, just cheaper.
    """
    return build_datacenter(DataCenterConfig(n_pdus=2, servers_per_pdu=50))
