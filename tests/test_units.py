"""Tests for unit conversions and validation helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro import units


class TestConversions:
    def test_watt_hours_to_joules(self):
        assert units.watt_hours_to_joules(1.0) == 3600.0

    def test_joules_to_watt_hours_round_trip(self):
        assert units.joules_to_watt_hours(
            units.watt_hours_to_joules(5.5)
        ) == pytest.approx(5.5)

    def test_amp_hours_to_joules_paper_battery(self):
        """0.5 Ah at 11 V = 19.8 kJ = 55 W x 6 min (the paper's UPS)."""
        assert units.amp_hours_to_joules(0.5, 11.0) == pytest.approx(19_800.0)

    def test_minutes(self):
        assert units.minutes(12.0) == 720.0
        assert units.to_minutes(720.0) == 12.0

    def test_minutes_per_month(self):
        """The paper uses 43,200 minutes per month (Section V-D)."""
        assert units.MINUTES_PER_MONTH == 43_200.0

    @given(x=st.floats(min_value=0.0, max_value=1e12))
    @settings(max_examples=30)
    def test_wh_joule_round_trip(self, x):
        assert units.joules_to_watt_hours(
            units.watt_hours_to_joules(x)
        ) == pytest.approx(x)

    @given(x=st.floats(min_value=0.0, max_value=1e15))
    @settings(max_examples=30)
    def test_joule_wh_round_trip(self, x):
        assert units.watt_hours_to_joules(
            units.joules_to_watt_hours(x)
        ) == pytest.approx(x)

    @given(
        ah=st.floats(min_value=1e-3, max_value=1e6),
        v=st.floats(min_value=1e-3, max_value=1e4),
    )
    @settings(max_examples=30)
    def test_amp_hours_symmetric_in_charge_and_voltage(self, ah, v):
        assert units.amp_hours_to_joules(ah, v) == units.amp_hours_to_joules(
            v, ah
        )

    @given(
        ah=st.floats(min_value=1e-3, max_value=1e6),
        v=st.floats(min_value=1e-3, max_value=1e4),
    )
    @settings(max_examples=30)
    def test_amp_hours_consistent_with_watt_hours(self, ah, v):
        """Ah x V is Wh, so the two converters must agree exactly."""
        assert units.amp_hours_to_joules(ah, v) == pytest.approx(
            units.watt_hours_to_joules(ah * v)
        )

    @given(x=st.floats(min_value=0.0, max_value=1e12))
    @settings(max_examples=30)
    def test_minutes_round_trip(self, x):
        assert units.to_minutes(units.minutes(x)) == pytest.approx(x)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_converters_reject_non_finite(self, bad):
        for converter in (
            units.watt_hours_to_joules,
            units.joules_to_watt_hours,
            units.minutes,
            units.to_minutes,
        ):
            with pytest.raises(ConfigurationError):
                converter(bad)
        with pytest.raises(ConfigurationError):
            units.amp_hours_to_joules(bad, 11.0)
        with pytest.raises(ConfigurationError):
            units.amp_hours_to_joules(0.5, bad)


class TestValidators:
    def test_require_finite_rejects_nan_and_inf(self):
        with pytest.raises(ConfigurationError):
            units.require_finite(float("nan"), "x")
        with pytest.raises(ConfigurationError):
            units.require_finite(float("inf"), "x")

    def test_require_finite_rejects_non_numbers(self):
        with pytest.raises(ConfigurationError):
            units.require_finite("5", "x")
        with pytest.raises(ConfigurationError):
            units.require_finite(True, "x")

    def test_require_positive(self):
        assert units.require_positive(1.5, "x") == 1.5
        with pytest.raises(ConfigurationError):
            units.require_positive(0.0, "x")
        with pytest.raises(ConfigurationError):
            units.require_positive(-1.0, "x")

    def test_require_non_negative(self):
        assert units.require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ConfigurationError):
            units.require_non_negative(-0.1, "x")

    def test_require_fraction(self):
        assert units.require_fraction(0.5, "x") == 0.5
        assert units.require_fraction(0.0, "x") == 0.0
        assert units.require_fraction(1.0, "x") == 1.0
        with pytest.raises(ConfigurationError):
            units.require_fraction(1.1, "x")

    def test_require_int_positive(self):
        assert units.require_int_positive(3, "x") == 3
        with pytest.raises(ConfigurationError):
            units.require_int_positive(0, "x")
        with pytest.raises(ConfigurationError):
            units.require_int_positive(2.0, "x")
        with pytest.raises(ConfigurationError):
            units.require_int_positive(True, "x")

    def test_error_message_names_the_parameter(self):
        with pytest.raises(ConfigurationError, match="voltage"):
            units.require_positive(-1.0, "voltage")


class TestClamp:
    def test_clamp_inside(self):
        assert units.clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_edges(self):
        assert units.clamp(-1.0, 0.0, 1.0) == 0.0
        assert units.clamp(2.0, 0.0, 1.0) == 1.0

    def test_clamp_inverted_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            units.clamp(0.5, 1.0, 0.0)

    @given(
        x=st.floats(allow_nan=False, allow_infinity=False),
        lo=st.floats(min_value=-100, max_value=0),
        hi=st.floats(min_value=0.001, max_value=100),
    )
    @settings(max_examples=40)
    def test_clamp_always_within_bounds(self, x, lo, hi):
        assert lo <= units.clamp(x, lo, hi) <= hi
