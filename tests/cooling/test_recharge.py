"""Tests for the post-burst recharge planner."""

from __future__ import annotations

import math

import pytest

from repro.cooling.crac import CoolingPlant
from repro.cooling.recharge import RechargePlanner
from repro.cooling.tes import TesTank
from repro.errors import ConfigurationError
from repro.power.topology import PowerTopology


def make_parts(drain_ups=True, drain_tes=True):
    topo = PowerTopology(n_pdus=2, servers_per_pdu=50)
    tes = TesTank.sized_for(topo.peak_normal_it_power_w)
    plant = CoolingPlant(
        peak_normal_it_power_w=topo.peak_normal_it_power_w, tes=tes
    )
    if drain_ups:
        topo.pdu.ups.discharge_up_to(topo.pdu.ups.available_power_w(), 30.0)
    if drain_tes:
        tes.absorb_up_to(tes.max_discharge_w, 300.0)
    return topo, plant


class TestPlanning:
    def test_no_recharge_when_everything_full(self):
        topo, plant = make_parts(drain_ups=False, drain_tes=False)
        planner = RechargePlanner(topo, plant)
        allocation = planner.plan(current_feed_w=1000.0, current_heat_w=1000.0)
        assert allocation.total_electric_w == 0.0

    def test_recharges_drained_stores(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        # A lightly-loaded facility: enough slack that the batteries'
        # charge-rate cap leaves budget for the tank too.
        allocation = planner.plan(
            current_feed_w=topo.dc_breaker.rated_power_w * 0.1,
            current_heat_w=plant.peak_normal_it_power_w * 0.1,
        )
        assert allocation.ups_electric_w > 0.0
        assert allocation.tes_thermal_w > 0.0

    def test_stays_within_slack_budget(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant, slack_fraction=0.5)
        feed = topo.dc_breaker.rated_power_w * 0.8
        allocation = planner.plan(feed, plant.peak_normal_it_power_w * 0.8)
        slack = (topo.dc_breaker.rated_power_w - feed) * 0.5
        assert allocation.total_electric_w <= slack * (1.0 + 1e-9)

    def test_no_slack_no_recharge(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        allocation = planner.plan(
            current_feed_w=topo.dc_breaker.rated_power_w,
            current_heat_w=0.0,
        )
        assert allocation.total_electric_w == 0.0

    def test_tes_thermal_limited_by_chiller_spare(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        # Chiller fully busy: no cold production to spare.
        allocation = planner.plan(
            current_feed_w=0.0,
            current_heat_w=plant.chiller.max_chiller_heat_w(),
        )
        assert allocation.tes_thermal_w == 0.0

    def test_ups_priority(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant, ups_priority=True)
        # Tiny slack: it should all go to the batteries.
        feed = topo.dc_breaker.rated_power_w - 100.0
        allocation = planner.plan(feed, 0.0)
        assert allocation.ups_electric_w > 0.0
        assert allocation.ups_electric_w >= allocation.tes_electric_w

    def test_validation(self):
        topo, plant = make_parts()
        with pytest.raises(ConfigurationError):
            RechargePlanner(topo, plant, slack_fraction=0.0)


class TestExecutionAndEstimates:
    def test_execute_fills_stores(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        ups_before = topo.pdu.ups.state_of_charge
        tes_before = plant.tes.state_of_charge
        for _ in range(60):
            allocation = planner.plan(
                current_feed_w=topo.dc_breaker.rated_power_w * 0.1,
                current_heat_w=plant.peak_normal_it_power_w * 0.1,
            )
            planner.execute(allocation, dt_s=1.0)
        assert topo.pdu.ups.state_of_charge > ups_before
        assert plant.tes.state_of_charge > tes_before

    def test_time_to_ready_finite_with_slack(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        t = planner.time_to_ready_s(
            current_feed_w=topo.dc_breaker.rated_power_w * 0.1,
            current_heat_w=plant.peak_normal_it_power_w * 0.1,
        )
        assert 0.0 < t < float("inf")

    def test_time_to_ready_infinite_without_slack(self):
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        t = planner.time_to_ready_s(
            current_feed_w=topo.dc_breaker.rated_power_w,
            current_heat_w=plant.chiller.max_chiller_heat_w(),
        )
        assert math.isinf(t)

    def test_time_to_ready_zero_when_full(self):
        topo, plant = make_parts(drain_ups=False, drain_tes=False)
        planner = RechargePlanner(topo, plant)
        assert planner.time_to_ready_s(0.0, 0.0) == 0.0

    def test_full_recovery_simulation(self):
        """Driving the planner long enough restores both stores fully —
        the facility is ready for the next burst."""
        topo, plant = make_parts()
        planner = RechargePlanner(topo, plant)
        for _ in range(5000):
            allocation = planner.plan(
                current_feed_w=topo.dc_breaker.rated_power_w * 0.4,
                current_heat_w=plant.peak_normal_it_power_w * 0.4,
            )
            if allocation.total_electric_w == 0.0:
                break
            planner.execute(allocation, dt_s=10.0)
        assert topo.pdu.ups.state_of_charge == pytest.approx(1.0, abs=1e-6)
        assert plant.tes.state_of_charge == pytest.approx(1.0, abs=1e-6)
