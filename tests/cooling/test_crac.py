"""Tests for the composed cooling plant (chiller + TES + room)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cooling.crac import CoolingPlant
from repro.cooling.tes import TesTank

PEAK_W = 9.9e6


def make_plant(with_tes=True, margin=1.15):
    tes = TesTank.sized_for(PEAK_W) if with_tes else None
    return CoolingPlant(
        peak_normal_it_power_w=PEAK_W, chiller_margin=margin, tes=tes
    )


class TestCoolingPlantBasics:
    def test_normal_cooling_power_matches_pue(self):
        plant = make_plant()
        assert plant.normal_cooling_power_w == pytest.approx(0.53 * PEAK_W)

    def test_has_tes(self):
        assert make_plant(with_tes=True).has_tes
        assert not make_plant(with_tes=False).has_tes

    def test_chiller_margin_scales_capacity(self):
        plant = make_plant(margin=1.15)
        assert plant.chiller.max_chiller_heat_w() == pytest.approx(
            PEAK_W * 1.15
        )

    def test_margin_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            make_plant(margin=0.9)


class TestStepAndEstimate:
    def test_estimate_matches_step_exactly(self):
        """The controller sizes breaker budgets from the estimate; any
        mismatch with the committed step is a power-safety bug."""
        plant = make_plant()
        for it_power in (5.0e6, 9.9e6, 15.0e6, 26.0e6):
            for use_tes in (False, True):
                est = plant.estimate(it_power, 1.0, use_tes)
                actual = plant.step(it_power, 1.0, use_tes)
                assert actual.electric_power_w == pytest.approx(
                    est.electric_power_w
                ), (it_power, use_tes)

    def test_normal_load_fully_removed(self):
        plant = make_plant()
        step = plant.step(PEAK_W, 1.0)
        assert step.removal_w == pytest.approx(PEAK_W)
        assert step.heat_via_tes_w == 0.0

    def test_sprint_load_without_tes_heats_room(self):
        plant = make_plant()
        before = plant.room.temperature_c
        plant.step(20.0e6, 60.0, use_tes=False)
        assert plant.room.temperature_c > before

    def test_tes_absorbs_sprint_heat(self):
        plant = make_plant()
        step = plant.step(20.0e6, 1.0, use_tes=True)
        assert step.heat_via_tes_w > 0.0
        assert step.removal_w == pytest.approx(20.0e6)
        assert plant.room.temperature_c == pytest.approx(
            plant.room.setpoint_c
        )

    def test_tes_reduces_electric_power(self):
        plant_tes = make_plant()
        plant_chiller = make_plant()
        with_tes = plant_tes.step(9.0e6, 1.0, use_tes=True)
        without = plant_chiller.step(9.0e6, 1.0, use_tes=False)
        assert with_tes.electric_power_w < without.electric_power_w

    def test_use_tes_ignored_without_tank(self):
        plant = make_plant(with_tes=False)
        step = plant.step(9.0e6, 1.0, use_tes=True)
        assert step.heat_via_tes_w == 0.0

    def test_empty_tank_falls_back_to_chiller(self):
        plant = make_plant()
        plant.tes.absorb_up_to(plant.tes.max_discharge_w, 1e9)
        assert plant.tes.is_empty
        step = plant.step(9.0e6, 1.0, use_tes=True)
        assert step.heat_via_tes_w == 0.0
        assert step.heat_via_chiller_w == pytest.approx(9.0e6)

    def test_recovery_draws_extra_chiller_power(self):
        plant = make_plant()
        plant.step(20.0e6, 120.0, use_tes=False)  # heat the room
        recovering = plant.step(5.0e6, 1.0)
        assert recovering.heat_via_chiller_w > 5.0e6

    def test_room_recovers_after_excursion(self):
        plant = make_plant()
        plant.step(20.0e6, 120.0, use_tes=False)
        heated = plant.room.temperature_c
        for _ in range(1800):
            plant.step(5.0e6, 1.0)
        assert plant.room.temperature_c < heated

    def test_reset(self):
        plant = make_plant()
        plant.step(20.0e6, 60.0, use_tes=True)
        plant.reset()
        assert plant.tes.state_of_charge == pytest.approx(1.0)
        assert plant.room.temperature_c == pytest.approx(
            plant.room.setpoint_c
        )
