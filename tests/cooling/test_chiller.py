"""Tests for the chiller/CRAC steady-state power model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cooling.chiller import (
    CHILLER_SHARE_OF_COOLING_POWER,
    ChillerPlant,
    CoolingStep,
    DEFAULT_PUE,
)


class TestChillerPlant:
    def make(self):
        return ChillerPlant(rated_removal_w=9.9e6)

    def test_default_pue(self):
        assert DEFAULT_PUE == pytest.approx(1.53)

    def test_cooling_overhead_from_pue(self):
        assert self.make().cooling_overhead == pytest.approx(0.53)

    def test_electric_power_all_chiller(self):
        plant = self.make()
        assert plant.electric_power_w(9.9e6, 0.0) == pytest.approx(
            0.53 * 9.9e6
        )

    def test_electric_power_all_tes_saves_two_thirds(self):
        """Section V-C: TES replacing the chiller saves up to 2/3."""
        plant = self.make()
        with_tes = plant.electric_power_w(0.0, 9.9e6)
        without = plant.electric_power_w(9.9e6, 0.0)
        assert with_tes == pytest.approx(without / 3.0)

    def test_electric_power_mixed_is_linear(self):
        plant = self.make()
        mixed = plant.electric_power_w(5.0e6, 4.9e6)
        expected = plant.electric_power_w(5.0e6, 0.0) + plant.electric_power_w(
            0.0, 4.9e6
        )
        assert mixed == pytest.approx(expected)

    def test_chiller_share_constant(self):
        assert CHILLER_SHARE_OF_COOLING_POWER == pytest.approx(2.0 / 3.0)

    def test_rated_electric_power(self):
        plant = self.make()
        assert plant.rated_electric_power_w == pytest.approx(0.53 * 9.9e6)

    def test_max_chiller_heat(self):
        assert self.make().max_chiller_heat_w() == pytest.approx(9.9e6)

    def test_pue_one_means_free_cooling(self):
        plant = ChillerPlant(rated_removal_w=1e6, pue=1.0)
        assert plant.electric_power_w(1e6, 0.0) == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ChillerPlant(rated_removal_w=1e6, pue=0.5)
        with pytest.raises(ConfigurationError):
            ChillerPlant(rated_removal_w=0.0)


class TestCoolingStep:
    def test_removal_sums_components(self):
        step = CoolingStep(
            heat_via_chiller_w=3.0, heat_via_tes_w=2.0, electric_power_w=1.0
        )
        assert step.removal_w == pytest.approx(5.0)
