"""Tests for the lumped room thermal model and the TES-activation rule."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, ThermalEmergencyError
from repro.cooling.thermal import (
    CALIBRATION_MINUTES_TO_THRESHOLD,
    CFD_SAFE_RESUME_MINUTES,
    RoomThermalModel,
    tes_activation_time_s,
)

PEAK_W = 9.9e6


def make_room():
    return RoomThermalModel(peak_normal_it_power_w=PEAK_W)


class TestCalibration:
    def test_full_gap_reaches_threshold_after_calibration_time(self):
        """A gap equal to peak-normal power heats setpoint->threshold in
        the calibrated number of minutes."""
        room = make_room()
        t = room.time_to_threshold_s(PEAK_W)
        assert t == pytest.approx(CALIBRATION_MINUTES_TO_THRESHOLD * 60.0)

    def test_schneider_resume_at_five_minutes_is_safe(self):
        """The CFD headline: chiller resumed at minute 5 => threshold never
        reached (Section V-C, [22])."""
        room = make_room()
        for _ in range(int(CFD_SAFE_RESUME_MINUTES * 60)):
            room.step(PEAK_W, 0.0, 1.0)
        assert not room.overheated
        # Resume full cooling (with a realistic margin) and keep going.
        for _ in range(1200):
            room.step(PEAK_W, PEAK_W * 1.15, 1.0)
        assert not room.overheated
        assert room.peak_temperature_c < room.threshold_c

    def test_unresumed_outage_overheats(self):
        room = make_room()
        with pytest.raises(ThermalEmergencyError):
            for _ in range(600):
                room.step(PEAK_W, 0.0, 1.0)


class TestRoomDynamics:
    def test_balanced_heat_keeps_temperature(self):
        room = make_room()
        room.step(PEAK_W, PEAK_W, 60.0)
        assert room.temperature_c == pytest.approx(room.setpoint_c)

    def test_half_gap_heats_at_half_rate(self):
        fast = make_room()
        slow = make_room()
        fast.step(PEAK_W, 0.0, 60.0)
        slow.step(PEAK_W, PEAK_W / 2.0, 60.0)
        fast_rise = fast.temperature_c - fast.setpoint_c
        slow_rise = slow.temperature_c - slow.setpoint_c
        assert slow_rise == pytest.approx(fast_rise / 2.0)

    def test_surplus_removal_recovers_toward_setpoint(self):
        room = make_room()
        room.step(PEAK_W, 0.0, 120.0)
        heated = room.temperature_c
        for _ in range(600):
            room.step(0.5 * PEAK_W, PEAK_W, 1.0)
        assert room.temperature_c < heated
        assert room.temperature_c >= room.setpoint_c - 1e-9

    def test_never_undershoots_setpoint(self):
        room = make_room()
        for _ in range(100):
            room.step(0.0, PEAK_W, 10.0)
        assert room.temperature_c == pytest.approx(room.setpoint_c)

    def test_headroom(self):
        room = make_room()
        assert room.headroom_k == pytest.approx(
            room.threshold_c - room.setpoint_c
        )

    def test_time_to_threshold_zero_gap_is_infinite(self):
        assert math.isinf(make_room().time_to_threshold_s(0.0))

    def test_peak_temperature_tracked(self):
        room = make_room()
        room.step(PEAK_W, 0.0, 60.0)
        peak = room.temperature_c
        room.step(0.0, PEAK_W * 1.15, 600.0)
        assert room.peak_temperature_c == pytest.approx(peak)

    def test_no_raise_flag(self):
        room = make_room()
        for _ in range(700):
            room.step(PEAK_W, 0.0, 1.0, raise_on_emergency=False)
        assert room.overheated

    def test_reset(self):
        room = make_room()
        room.step(PEAK_W, 0.0, 60.0)
        room.reset()
        assert room.temperature_c == pytest.approx(room.setpoint_c)
        assert room.peak_temperature_c == pytest.approx(room.setpoint_c)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            RoomThermalModel(
                peak_normal_it_power_w=1e6, setpoint_c=40.0, threshold_c=30.0
            )


class TestTesActivationRule:
    def test_paper_rule_full_additional_power(self):
        """With additional power equal to peak-normal, activate at 5 min."""
        t = tes_activation_time_s(PEAK_W, PEAK_W)
        assert t == pytest.approx(300.0)

    def test_paper_rule_scales_inversely(self):
        """t_TES = 5 min x peak-normal / max-additional (Section V-C)."""
        t = tes_activation_time_s(PEAK_W, 2.0 * PEAK_W)
        assert t == pytest.approx(150.0)

    def test_default_facility_activation_time(self):
        """At the paper's defaults (16.2 MW max additional on 9.9 MW
        peak-normal) the TES activates ~3 minutes into the burst."""
        t = tes_activation_time_s(9.9e6, 16.2e6)
        assert t == pytest.approx(183.3, abs=0.5)

    def test_no_additional_power_never_activates(self):
        assert math.isinf(tes_activation_time_s(PEAK_W, 0.0))
