"""Tests for the thermal-energy-storage tank model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, TankDepletedError
from repro.cooling.tes import DEFAULT_TES_RUNTIME_MIN, TesTank


class TestTesSizing:
    def test_paper_sizing_12_minutes_at_peak_normal(self):
        """The tank carries the full cooling load for 12 min (Sec VI-A)."""
        tank = TesTank.sized_for(9.9e6)
        assert tank.runtime_at_load_s(9.9e6) == pytest.approx(12 * 60.0)

    def test_capacity_in_joules(self):
        tank = TesTank.sized_for(9.9e6)
        assert tank.capacity_j == pytest.approx(9.9e6 * 720.0)

    def test_discharge_margin_covers_sprinting_heat(self):
        tank = TesTank.sized_for(9.9e6, discharge_margin=2.0)
        assert tank.max_discharge_w == pytest.approx(19.8e6)

    def test_default_runtime_constant(self):
        assert DEFAULT_TES_RUNTIME_MIN == pytest.approx(12.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            TesTank(capacity_j=0.0, max_discharge_w=1.0)
        with pytest.raises(ConfigurationError):
            TesTank.sized_for(0.0)


class TestTesDynamics:
    def make(self):
        return TesTank(capacity_j=1000.0, max_discharge_w=100.0)

    def test_starts_full(self):
        assert self.make().state_of_charge == pytest.approx(1.0)

    def test_absorb_reduces_energy(self):
        tank = self.make()
        absorbed = tank.absorb(50.0, 10.0)
        assert absorbed == pytest.approx(500.0)
        assert tank.energy_j == pytest.approx(500.0)

    def test_absorb_beyond_energy_raises(self):
        tank = self.make()
        with pytest.raises(TankDepletedError):
            tank.absorb(100.0, 11.0)

    def test_absorb_beyond_rate_raises(self):
        tank = self.make()
        with pytest.raises(TankDepletedError):
            tank.absorb(150.0, 1.0)

    def test_absorb_up_to_respects_rate(self):
        tank = self.make()
        rate = tank.absorb_up_to(500.0, 1.0)
        assert rate == pytest.approx(100.0)

    def test_absorb_up_to_respects_energy(self):
        tank = self.make()
        tank.absorb(100.0, 9.0)  # 900 J gone
        rate = tank.absorb_up_to(100.0, 2.0)
        assert rate == pytest.approx(50.0)  # only 100 J left over 2 s
        assert tank.is_empty

    def test_runtime_at_load(self):
        tank = self.make()
        assert tank.runtime_at_load_s(50.0) == pytest.approx(20.0)
        assert math.isinf(tank.runtime_at_load_s(0.0))
        assert tank.runtime_at_load_s(200.0) == 0.0

    def test_available_absorption_zero_when_empty(self):
        tank = self.make()
        tank.absorb(100.0, 10.0)
        assert tank.available_absorption_w() == 0.0

    def test_recharge(self):
        tank = self.make()
        tank.absorb(100.0, 5.0)
        stored = tank.recharge(50.0, 4.0)
        assert stored == pytest.approx(200.0)

    def test_recharge_saturates(self):
        tank = self.make()
        assert tank.recharge(1000.0, 100.0) == 0.0

    def test_total_absorbed_accounting(self):
        tank = self.make()
        tank.absorb(10.0, 10.0)
        tank.absorb_up_to(20.0, 10.0)
        assert tank.total_absorbed_j == pytest.approx(300.0)

    def test_reset(self):
        tank = self.make()
        tank.absorb(100.0, 5.0)
        tank.reset()
        assert tank.state_of_charge == pytest.approx(1.0)
        assert tank.total_absorbed_j == 0.0

    @given(
        loads=st.lists(
            st.floats(min_value=0.0, max_value=120.0), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40)
    def test_absorbed_heat_never_exceeds_capacity(self, loads):
        tank = self.make()
        for heat in loads:
            tank.absorb_up_to(heat, 5.0)
        assert tank.total_absorbed_j <= tank.capacity_j * (1.0 + 1e-9)
        assert tank.energy_j >= -1e-9
