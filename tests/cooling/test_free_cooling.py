"""Tests for the free-cooling (economizer) extension."""

from __future__ import annotations

import pytest

from repro.cooling.crac import CoolingPlant
from repro.cooling.free_cooling import (
    Economizer,
    FreeCooledPlant,
    OutsideAirProfile,
)
from repro.cooling.tes import TesTank
from repro.errors import ConfigurationError

PEAK_W = 9.9e6

#: Night / day sampling times for the default profile (peak at 15:00).
NIGHT_S = 3.0 * 3600.0
DAY_S = 15.0 * 3600.0


def make_plant():
    inner = CoolingPlant(
        peak_normal_it_power_w=PEAK_W, tes=TesTank.sized_for(PEAK_W)
    )
    return FreeCooledPlant(plant=inner, economizer=Economizer(
        cutoff_c=18.0, max_rejection_w=PEAK_W * 1.2
    ))


class TestOutsideAirProfile:
    def test_peak_mid_afternoon(self):
        profile = OutsideAirProfile()
        assert profile.temperature_c(DAY_S) == pytest.approx(
            profile.mean_c + profile.amplitude_c
        )

    def test_trough_at_night(self):
        profile = OutsideAirProfile()
        assert profile.temperature_c(NIGHT_S) == pytest.approx(
            profile.mean_c - profile.amplitude_c
        )

    def test_periodic(self):
        profile = OutsideAirProfile()
        assert profile.temperature_c(1000.0) == pytest.approx(
            profile.temperature_c(1000.0 + 86_400.0)
        )


class TestEconomizer:
    def test_available_when_cold(self):
        eco = Economizer(cutoff_c=18.0)
        assert eco.available(NIGHT_S)
        assert not eco.available(DAY_S)

    def test_fan_power_far_below_chiller(self):
        eco = Economizer(fan_overhead=0.06)
        assert eco.electric_power_w(PEAK_W) < 0.53 * PEAK_W / 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Economizer(max_rejection_w=0.0)


class TestFreeCooledPlant:
    def test_night_operation_is_cheap(self):
        plant = make_plant()
        step = plant.step(PEAK_W, time_s=NIGHT_S, dt_s=1.0)
        chiller_only = 0.53 * PEAK_W
        assert step.electric_power_w == pytest.approx(PEAK_W * 0.06)
        assert step.electric_power_w < chiller_only / 3.0

    def test_day_operation_falls_back_to_chiller(self):
        plant = make_plant()
        step = plant.step(PEAK_W, time_s=DAY_S, dt_s=1.0)
        assert step.electric_power_w == pytest.approx(0.53 * PEAK_W)

    def test_night_sprint_leaves_tes_untouched(self):
        """A burst in a free-cooling window spares the tank: the economizer
        carries what it can and the chiller covers the remainder."""
        plant = make_plant()
        soc_before = plant.tes.state_of_charge
        plant.step(PEAK_W * 1.1, time_s=NIGHT_S, dt_s=60.0, use_tes=False)
        assert plant.tes.state_of_charge == soc_before
        assert plant.room.temperature_c == pytest.approx(
            plant.room.setpoint_c
        )

    def test_day_sprint_heats_room_without_tes(self):
        plant = make_plant()
        plant.step(PEAK_W * 2.0, time_s=DAY_S, dt_s=60.0, use_tes=False)
        assert plant.room.temperature_c > plant.room.setpoint_c

    def test_room_balance_includes_free_cooling(self):
        plant = make_plant()
        step = plant.step(PEAK_W * 0.8, time_s=NIGHT_S, dt_s=1.0)
        assert step.removal_w == pytest.approx(PEAK_W * 0.8)

    def test_free_cooling_fraction(self):
        plant = make_plant()
        assert plant.free_cooling_fraction(PEAK_W, NIGHT_S) == pytest.approx(1.0)
        assert plant.free_cooling_fraction(PEAK_W, DAY_S) == 0.0
        # Above the economizer's capacity, only part of the heat is free.
        fraction = plant.free_cooling_fraction(PEAK_W * 2.0, NIGHT_S)
        assert 0.0 < fraction < 1.0

    def test_reset(self):
        plant = make_plant()
        plant.step(PEAK_W * 2.0, time_s=DAY_S, dt_s=120.0, use_tes=True)
        plant.reset()
        assert plant.tes.state_of_charge == pytest.approx(1.0)
        assert plant.room.temperature_c == pytest.approx(plant.room.setpoint_c)
