"""Tests for the exception hierarchy."""

from __future__ import annotations

import math

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.PowerSafetyError,
            errors.BreakerTrippedError,
            errors.EnergyStorageError,
            errors.BatteryDepletedError,
            errors.TankDepletedError,
            errors.ThermalEmergencyError,
            errors.SimulationError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        """Callers using plain ValueError handling still catch config bugs."""
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_breaker_tripped_is_power_safety(self):
        assert issubclass(errors.BreakerTrippedError, errors.PowerSafetyError)

    def test_storage_errors_grouped(self):
        assert issubclass(errors.BatteryDepletedError, errors.EnergyStorageError)
        assert issubclass(errors.TankDepletedError, errors.EnergyStorageError)


class TestPayloads:
    def test_breaker_tripped_carries_context(self):
        err = errors.BreakerTrippedError("pdu-7/breaker", 312.0)
        assert err.breaker_name == "pdu-7/breaker"
        assert err.time_s == 312.0
        assert "pdu-7/breaker" in str(err)
        assert "312" in str(err)

    def test_breaker_tripped_default_time(self):
        err = errors.BreakerTrippedError("b")
        assert math.isnan(err.time_s)

    def test_thermal_emergency_carries_temperatures(self):
        err = errors.ThermalEmergencyError(41.2, 40.0)
        assert err.temperature_c == 41.2
        assert err.threshold_c == 40.0
        assert "41.2" in str(err)
