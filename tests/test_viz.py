"""Tests for the terminal visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strategies import GreedyStrategy
from repro.errors import ConfigurationError
from repro.simulation.config import DataCenterConfig
from repro.simulation.engine import simulate_strategy
from repro.viz import ascii_chart, phase_ribbon, render_run, sparkline
from repro.workloads.traces import Trace

SMALL = DataCenterConfig(n_pdus=2, servers_per_pdu=50)


@pytest.fixture(scope="module")
def result():
    values = [0.8] * 60 + [2.4] * 300 + [0.8] * 60
    trace = Trace(np.asarray(values, dtype=float), 1.0, "viz")
    return simulate_strategy(trace, GreedyStrategy(), SMALL)


class TestSparkline:
    def test_width_respected(self):
        line = sparkline(np.linspace(0, 1, 500), width=40)
        assert len(line) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=40)) == 3

    def test_monotone_series_renders_monotone(self):
        line = sparkline(np.linspace(0, 1, 60), width=60)
        assert list(line) == sorted(line, key="  ▁▂▃▄▅▆▇█".index)

    def test_constant_series(self):
        line = sparkline([2.0] * 10)
        assert len(set(line)) == 1

    def test_pinned_scale(self):
        a = sparkline([0.0, 1.0], low=0.0, high=2.0)
        assert a[-1] != "█"  # 1.0 of 2.0 is mid-scale

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestAsciiChart:
    def test_dimensions(self):
        chart = ascii_chart(np.linspace(0, 5, 100), width=50, height=8)
        lines = chart.splitlines()
        assert len(lines) == 8
        assert all(len(line) >= 50 for line in lines)

    def test_axis_labels(self):
        chart = ascii_chart([0.0, 5.0], height=4)
        assert "5.00" in chart
        assert "0.00" in chart

    def test_label_appended(self):
        chart = ascii_chart([1.0, 2.0], label="demand")
        assert chart.splitlines()[-1].strip() == "demand"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([])


class TestRunRendering:
    def test_phase_ribbon_contents(self, result):
        ribbon = phase_ribbon(result, width=60)
        assert len(ribbon) == 60
        assert set(ribbon) <= {".", "1", "2", "3"}
        assert "." in ribbon       # idle head/tail
        assert "2" in ribbon       # UPS phase mid-burst

    def test_render_run(self, result):
        text = render_run(result, width=50)
        lines = text.splitlines()
        assert lines[0].startswith("demand")
        assert lines[1].startswith("served")
        assert lines[2].startswith("phase")
        assert "avg perf" in lines[3]

    def test_served_never_above_demand_visually(self, result):
        """With a shared scale the served sparkline never exceeds the
        demand sparkline's level in any bucket."""
        order = "  ▁▂▃▄▅▆▇█"
        text = render_run(result, width=50)
        demand_line = text.splitlines()[0].split(None, 1)[1]
        served_line = text.splitlines()[1].split(None, 1)[1]
        for d, s in zip(demand_line, served_line):
            assert order.index(s) <= order.index(d) + 1  # rounding slack
