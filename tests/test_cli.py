"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "180,000" in out
        assert "1.53" in out

    def test_quickstart(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "average performance" in out
        assert "x" in out

    def test_uncontrolled(self, capsys):
        assert main(["uncontrolled"]) == 0
        out = capsys.readouterr().out
        assert "tripped a breaker" in out

    def test_strategies(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "MS" in out
        assert "Yahoo" in out

    def test_testbed(self, capsys):
        assert main(["testbed"]) == 0
        out = capsys.readouterr().out
        assert "no-UPS trip" in out
        assert "CB First" in out

    def test_economics(self, capsys):
        assert main(["economics"]) == 0
        out = capsys.readouterr().out
        assert "U_t = 4U_0" in out
        assert "R100" in out

    def test_sweep_headroom(self, capsys, tmp_path):
        args = ["sweep", "--headroom", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "headroom" in out
        assert "20%" in out
        assert "miss(es)" in out
        # The cache was populated; a rerun answers from it.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "5 cache hit(s), 0 miss(es)" in out

    def test_sweep_pue(self, capsys):
        assert main(["sweep", "--pue", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "PUE" in out

    def test_sweep_table(self, capsys):
        assert main([
            "sweep", "--table", "--no-cache", "--workers", "1",
            "--durations", "1", "--degrees", "2.8",
            "--candidates", "2.0,4.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "upper-bound table" in out
        assert "1.0 min" in out

    def test_sweep_bad_float_list_errors(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--table", "--no-cache", "--durations", "abc"])

    def test_sweep_without_flags_errors(self, capsys):
        assert main(["sweep"]) == 2

    def test_export(self, capsys, tmp_path):
        csv_path = tmp_path / "steps.csv"
        json_path = tmp_path / "summary.json"
        assert main(["export", str(csv_path), "--json", str(json_path)]) == 0
        assert csv_path.exists()
        assert json_path.exists()
        out = capsys.readouterr().out
        assert "telemetry" in out

    def test_plan(self, capsys):
        assert main(["plan", "--target", "1.3", "--magnitude", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "smallest battery" in out

    def test_plan_unreachable_target(self, capsys):
        assert main(["plan", "--target", "9.0"]) == 1

    def test_report_wiring(self, capsys, tmp_path, monkeypatch):
        """The report command writes the rendered lines and maps the
        pass/fail count to its exit code (experiments stubbed for speed)."""
        import repro.simulation.reporting as reporting
        from repro.simulation.reporting import ReportLine

        fake = [ReportLine("Fig. X", "quantity", "paper", "measured", True)]
        monkeypatch.setattr(
            reporting, "collect_report_lines", lambda *a, **k: fake
        )
        out_path = tmp_path / "report.md"
        assert main(["report", str(out_path)]) == 0
        assert "Fig. X" in out_path.read_text()
        assert "1/1" in capsys.readouterr().out

    def test_report_failures_exit_nonzero(self, capsys, tmp_path, monkeypatch):
        import repro.simulation.reporting as reporting
        from repro.simulation.reporting import ReportLine

        fake = [ReportLine("Fig. X", "q", "p", "m", False)]
        monkeypatch.setattr(
            reporting, "collect_report_lines", lambda *a, **k: fake
        )
        assert main(["report", str(tmp_path / "r.md")]) == 1


class TestSimulateCommand:
    def test_clean_run(self, capsys):
        assert main(["simulate"]) == 0
        out = capsys.readouterr().out
        assert "average performance" in out
        assert "fault events" not in out

    def test_fixed_strategy_with_bound(self, capsys):
        assert main(["simulate", "--strategy", "fixed", "--bound", "2.5"]) == 0
        out = capsys.readouterr().out
        assert "strategy: fixed" in out

    def test_fault_spec_degrades_but_completes(self, capsys):
        args = ["simulate", "--fault", "breaker@120s:fraction=0.5"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fault events (2)" in out
        assert "breaker_trip" in out
        assert "degraded to admission-control-only at 120.0 s" in out
        assert "1800/1800 samples" in out

    def test_fault_plan_file(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"events": [{"kind": "chiller_outage", "time_s": 60.0,'
            ' "duration_s": 30.0}]}'
        )
        assert main(["simulate", "--fault-plan", str(plan)]) == 0
        out = capsys.readouterr().out
        assert "chiller_outage" in out
        assert "restored" in out

    def test_bad_fault_spec_exits_with_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--fault", "warp@120s"])

    def test_missing_fault_plan_file_exits_with_error(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--fault-plan", "/no/such/plan.json"])


class TestSweepFaults:
    def test_headroom_sweep_with_fault(self, capsys):
        args = [
            "sweep", "--headroom", "--no-cache",
            "--fault", "breaker@120s:fraction=0.5",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "degraded at 120s" in out

    def test_fault_changes_cached_identity(self, capsys, tmp_path):
        base = ["sweep", "--headroom", "--cache-dir", str(tmp_path)]
        assert main(base) == 0
        capsys.readouterr()
        faulted = base + ["--fault", "chiller@300s"]
        assert main(faulted) == 0
        out = capsys.readouterr().out
        # The faulted sweep must not be answered from the clean cache.
        assert "0 cache hit(s)" in out


class TestLint:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "kernel-drift", "units", "determinism", "error-discipline"
        ):
            assert rule_id in out

    def test_clean_fixture_exits_zero(self, capsys, tmp_path):
        (tmp_path / "clean.py").write_text("value_j = power_w * dt_s\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text("x = y * 3600\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "[units]" in capsys.readouterr().out

    def test_json_format(self, capsys, tmp_path):
        import json

        (tmp_path / "bad.py").write_text("x = y * 3600\n")
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["findings"][0]["rule"] == "units"

    def test_rule_filter(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(
            "x = y * 3600\ntry:\n    x()\nexcept:\n    pass\n"
        )
        assert main(
            ["lint", "--rule", "error-discipline", str(tmp_path)]
        ) == 1
        out = capsys.readouterr().out
        assert "[error-discipline]" in out
        assert "[units]" not in out

    def test_unknown_rule_exits_two(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", "--rule", "nope", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_repo_source_tree_is_clean(self, capsys):
        """The committed tree must lint clean — the CI gate, run locally."""
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        assert main(["lint", str(src)]) == 0
