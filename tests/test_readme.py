"""Guards on the README: its code blocks must actually run."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_key_sections(self):
        text = README.read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Reproducing the paper"):
            assert heading in text

    def test_quickstart_block_executes(self):
        """The README's quickstart runs verbatim and prints a result."""
        blocks = python_blocks()
        assert blocks, "README has no python code block"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        result = namespace["result"]
        assert result.average_performance > 1.0

    def test_documented_cli_commands_exist(self):
        """Every `python -m repro <cmd>` the README mentions parses."""
        from repro.cli import build_parser

        text = README.read_text()
        commands = set(
            re.findall(r"python -m repro (\w[\w-]*)", text)
        )
        parser = build_parser()
        known = set(parser._subparsers._group_actions[0].choices)
        assert commands <= known, commands - known
